//! The Cassandra operator — the §7 case study.
//!
//! A reconcile-loop operator managing `CassandraDatacenter` resources: it
//! keeps `desired` Cassandra pods (each with a PVC) per datacenter, scales
//! up by creating `{dc}-pvc-{i}` then `{dc}-{i}`, and scales down by
//! decommissioning the highest-index pod (graceful delete → kubelet stops
//! and finalizes → PVC cleanup). All decisions read the operator's informer
//! caches — its `(H′, S′)`.
//!
//! The three real defects the paper's tool found (instaclustr
//! cassandra-operator issues 398, 400, 402) are individually switchable via
//! [`OperatorFlags`]:
//!
//! * **398** (`pvc_requires_observed_terminating = true`): `Reconcile()`
//!   deletes a PVC only if it *observed* the pod with a deletion timestamp;
//!   if the pod's mark+delete fell into an observability gap, the PVC is
//!   orphaned forever.
//! * **400** (`handle_decommission_notfound = false`): decommission
//!   decisions trust the cached pod list; when the target is already gone
//!   (stale cache), the mark-delete returns NotFound and the buggy operator
//!   pins itself on the same target, blocking scale-down.
//! * **402** (`fresh_confirm_orphan = false`): orphaned-PVC cleanup trusts
//!   the cached pod list; a stale cache makes it delete the PVC of a live
//!   pod.

use std::collections::BTreeSet;

use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, TimerId};

use crate::api::{ApiError, ApiOk};
use crate::apiclient::{ApiClient, ApiClientConfig, ApiCompletion};
use crate::informer::{Informer, InformerConfig, InformerEvent};
use crate::objects::{Body, Object};

const TAG_TICK: u64 = 1;

/// Defect switches (see module docs). [`OperatorFlags::buggy`] reproduces
/// all three upstream defects; [`OperatorFlags::fixed`] none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorFlags {
    /// Bug 398 when `true`.
    pub pvc_requires_observed_terminating: bool,
    /// Bug 400 when `false`.
    pub handle_decommission_notfound: bool,
    /// Bug 402 when `false`.
    pub fresh_confirm_orphan: bool,
}

impl OperatorFlags {
    /// The shipped (defective) behaviour.
    pub fn buggy() -> OperatorFlags {
        OperatorFlags {
            pvc_requires_observed_terminating: true,
            handle_decommission_notfound: false,
            fresh_confirm_orphan: false,
        }
    }

    /// All three defects repaired.
    pub fn fixed() -> OperatorFlags {
        OperatorFlags {
            pvc_requires_observed_terminating: false,
            handle_decommission_notfound: true,
            fresh_confirm_orphan: true,
        }
    }
}

/// Operator tuning.
#[derive(Debug, Clone)]
pub struct OperatorConfig {
    /// How to reach the apiservers (use `ByInstance` to model the operator
    /// re-connecting elsewhere after a restart).
    pub api: ApiClientConfig,
    /// Reconcile interval.
    pub sync_interval: Duration,
    /// Defect switches.
    pub flags: OperatorFlags,
}

#[derive(Debug)]
enum PendingOp {
    /// A decommission mark in flight: the pod key.
    Decommission(String),
    /// A fresh owner-existence check guarding PVC deletion:
    /// (pvc key, owner pod key).
    ConfirmOrphan(String, String),
}

/// The Cassandra operator actor.
#[derive(Debug)]
pub struct CassandraOperator {
    cfg: OperatorConfig,
    instance: u64,
    client: ApiClient,
    dcs: Informer,
    pods: Informer,
    pvcs: Informer,
    /// Pod names we have *observed* carrying a deletion timestamp (the
    /// evidence bug 398 insists on).
    observed_terminating: BTreeSet<String>,
    /// PVC keys already deleted.
    released: BTreeSet<String>,
    /// Decommission target the buggy-400 path is stuck on, if any.
    stuck_on: Option<String>,
    pending: std::collections::BTreeMap<u64, PendingOp>,
    /// Pod/PVC creates already issued (dedup until visible).
    creating: BTreeSet<String>,
}

impl CassandraOperator {
    /// Creates an operator (spawn it into a world).
    pub fn new(cfg: OperatorConfig) -> CassandraOperator {
        let client = ApiClient::new(cfg.api.clone(), 0);
        CassandraOperator {
            cfg,
            instance: 0,
            client,
            dcs: Informer::new(InformerConfig::new("cassdcs/")),
            pods: Informer::new(InformerConfig::new("pods/")),
            pvcs: Informer::new(InformerConfig::new("pvcs/")),
            observed_terminating: BTreeSet::new(),
            released: BTreeSet::new(),
            stuck_on: None,
            pending: std::collections::BTreeMap::new(),
            creating: BTreeSet::new(),
        }
    }

    /// The static access protocol an operator built from `cfg` follows,
    /// for the partial-history hazard checker. The three defect switches
    /// map directly onto gate structure:
    ///
    /// * bug 398 (`pvc_requires_observed_terminating`): PVC deletion's
    ///   *only* path demands having witnessed the owner's transient
    ///   terminating mark — a missed-trigger observability gap;
    /// * bug 400 (`!handle_decommission_notfound`): the decommission mark
    ///   is not fenced by NotFound detect-and-recover, so it fires from an
    ///   arbitrarily stale (and, under `ByInstance`, time-traveled) view;
    /// * bug 402 (`!fresh_confirm_orphan`): orphanhood is judged from the
    ///   cached snapshot alone, with no quorum confirmation.
    pub fn access_summary(cfg: &OperatorConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath};
        let mut decommission_gates = vec![Gate::CachePresence("pods".into())];
        if cfg.flags.handle_decommission_notfound {
            // NotFound on the mark-delete is detected and the target
            // re-derived: the destructive write is ordered after the true
            // state — a fence in the §4.2.2 sense.
            decommission_gates.push(Gate::Fence("pods".into()));
        }
        let pvc_path = if cfg.flags.pvc_requires_observed_terminating {
            GatePath::new(
                "observed-terminating",
                vec![
                    Gate::CacheAbsence("pods".into()),
                    Gate::ObservedEvent("pods".into()),
                ],
            )
        } else if cfg.flags.fresh_confirm_orphan {
            GatePath::new(
                "orphan-confirmed",
                vec![
                    Gate::CacheAbsence("pods".into()),
                    Gate::FreshConfirm("pods".into()),
                ],
            )
        } else {
            GatePath::new("orphan-in-cache", vec![Gate::CacheAbsence("pods".into())])
        };
        AccessSummary {
            component: "cassandra-operator".into(),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![
                InformerConfig::new("cassdcs/").view_decl(),
                InformerConfig::new("pods/").view_decl(),
                InformerConfig::new("pvcs/").view_decl(),
            ],
            actions: vec![
                ActionDecl {
                    name: "create-pod".into(),
                    destructive: false,
                    paths: vec![GatePath::new(
                        "missing-replica",
                        vec![Gate::CacheAbsence("pods".into())],
                    )],
                },
                ActionDecl {
                    name: "decommission-pod".into(),
                    destructive: true,
                    paths: vec![GatePath::new("scale-down", decommission_gates)],
                },
                ActionDecl {
                    name: "delete-pvc".into(),
                    destructive: true,
                    paths: vec![pvc_path],
                },
            ],
        }
    }

    /// PVC keys the operator has deleted.
    pub fn released(&self) -> &BTreeSet<String> {
        &self.released
    }

    /// The decommission target the operator is wedged on (bug 400), if any.
    pub fn stuck_on(&self) -> Option<&str> {
        self.stuck_on.as_deref()
    }

    /// The most-behind frontier across this operator's informers (for lag
    /// sampling).
    pub fn view_revision(&self) -> ph_store::Revision {
        self.dcs
            .revision()
            .min(self.pods.revision())
            .min(self.pvcs.revision())
    }

    fn delete_pvc(&mut self, pvc_key: String, why: &str, ctx: &mut Ctx) {
        if !self.released.insert(pvc_key.clone()) {
            return;
        }
        ctx.annotate("operator.delete_pvc", format!("{pvc_key} ({why})"));
        ctx.counter_inc("operator.pvc_deletes");
        self.client.delete(pvc_key, None, ctx);
    }

    fn reconcile(&mut self, ctx: &mut Ctx) {
        if !self.dcs.is_synced() || !self.pods.is_synced() || !self.pvcs.is_synced() {
            return;
        }
        ctx.span_begin("reconcile", "cassandra-operator");
        self.reconcile_inner(ctx);
        ctx.span_end("reconcile");
    }

    fn reconcile_inner(&mut self, ctx: &mut Ctx) {
        // Record deletion-timestamp observations (evidence for bug 398).
        for pod in self.pods.objects() {
            if pod.is_terminating() {
                self.observed_terminating.insert(pod.meta.name.clone());
            }
        }
        let dcs: Vec<(String, u32)> = self
            .dcs
            .objects()
            .filter_map(|o| match &o.body {
                Body::CassandraDatacenter { desired } => Some((o.meta.name.clone(), *desired)),
                _ => None,
            })
            .collect();
        for (dc, desired) in dcs {
            self.reconcile_dc(&dc, desired, ctx);
        }
        self.cleanup_pvcs(ctx);
        let visible: BTreeSet<String> = self
            .pods
            .objects()
            .chain(self.pvcs.objects())
            .map(|o| o.key().as_str().to_string())
            .collect();
        self.creating.retain(|k| !visible.contains(k));
    }

    fn reconcile_dc(&mut self, dc: &str, desired: u32, ctx: &mut Ctx) {
        // Cassandra pods of this dc, from the cached view.
        let mine: Vec<Object> = self
            .pods
            .objects()
            .filter(|o| o.meta.owner.as_deref() == Some(dc))
            .cloned()
            .collect();
        let live: Vec<&Object> = mine.iter().filter(|o| !o.is_terminating()).collect();

        if (live.len() as u32) < desired {
            // Scale up: create PVC before pod (the real operator's order —
            // and the window bug 402's staleness exploits).
            for i in 0..desired {
                let pod_name = format!("{dc}-{i}");
                let pod_key = format!("pods/{pod_name}");
                if mine.iter().any(|o| o.meta.name == pod_name) || self.creating.contains(&pod_key)
                {
                    continue;
                }
                let pvc_name = format!("{dc}-pvc-{i}");
                let pvc_key = format!("pvcs/{pvc_name}");
                if self.pvcs.get(&pvc_key).is_none() && !self.creating.contains(&pvc_key) {
                    self.client
                        .create(&Object::pvc(pvc_name.clone(), pod_name.clone()), ctx);
                    self.creating.insert(pvc_key);
                }
                let mut pod = Object::pod(pod_name.clone(), None, Some(pvc_name));
                pod.meta.owner = Some(dc.to_string());
                ctx.annotate("operator.create_pod", pod_name);
                ctx.counter_inc("operator.pod_creates");
                self.client.create(&pod, ctx);
                self.creating.insert(pod_key);
            }
        } else if (live.len() as u32) > desired {
            // Scale down: decommission the highest-index live pod.
            // Cassandra decommissions are serial: wait for any draining pod
            // to fully leave before picking the next target.
            if mine.iter().any(|o| o.is_terminating()) {
                return;
            }
            if self
                .pending
                .values()
                .any(|p| matches!(p, PendingOp::Decommission(_)))
            {
                return; // one decommission at a time
            }
            let target = if let Some(stuck) = &self.stuck_on {
                // Buggy 400: wedged on a target the cache said existed.
                stuck.clone()
            } else {
                let mut names: Vec<String> = live.iter().map(|o| o.meta.name.clone()).collect();
                names.sort();
                match names.pop() {
                    Some(n) => format!("pods/{n}"),
                    None => return,
                }
            };
            ctx.annotate("operator.decommission", target.clone());
            ctx.counter_inc("operator.decommissions");
            // One decommission is in flight at a time, so this span pairs
            // unambiguously with the span_end in on_done and measures the
            // real mark-to-completion latency across callbacks.
            ctx.span_begin("decommission", target.clone());
            let req = self.client.mark_deleted(target.clone(), ctx);
            self.pending.insert(req, PendingOp::Decommission(target));
        }
    }

    fn cleanup_pvcs(&mut self, ctx: &mut Ctx) {
        let candidates: Vec<(String, String, String)> = self
            .pvcs
            .objects()
            .filter_map(|pvc| {
                let key = pvc.key().as_str().to_string();
                if self.released.contains(&key) {
                    return None;
                }
                let owner = pvc.meta.owner.clone()?;
                Some((key, format!("pods/{owner}"), owner))
            })
            .collect();
        for (pvc_key, owner_key, owner) in candidates {
            if self.pods.get(&owner_key).is_some() {
                continue; // owner visible: nothing to clean
            }
            if self.cfg.flags.pvc_requires_observed_terminating {
                // Bug 398: without the observed deletion timestamp, the
                // reconcile loop refuses to clean up — the PVC leaks.
                if !self.observed_terminating.contains(&owner) {
                    continue;
                }
                self.delete_pvc(pvc_key, "observed-terminating", ctx);
            } else if self.cfg.flags.fresh_confirm_orphan {
                // Fixed path: also skip anything we are mid-creating — the
                // quorum read would race our own uncommitted create.
                if self.creating.contains(&owner_key) {
                    continue;
                }
                if self
                    .pending
                    .values()
                    .any(|p| matches!(p, PendingOp::ConfirmOrphan(k, _) if *k == pvc_key))
                {
                    continue;
                }
                let req = self.client.get(owner_key.clone(), true, ctx);
                self.pending
                    .insert(req, PendingOp::ConfirmOrphan(pvc_key, owner_key));
            } else {
                // Bug 402: trust the cache — deliberately no in-flight-create
                // guard either: the shipped operator judged orphanhood purely
                // from its (possibly stale) listed snapshot.
                self.delete_pvc(pvc_key, "orphan-in-cache", ctx);
            }
        }
    }

    fn on_done(&mut self, op: PendingOp, result: &Result<ApiOk, ApiError>, ctx: &mut Ctx) {
        match op {
            PendingOp::Decommission(target) => match result {
                Err(ApiError::NotFound) => {
                    ctx.span_end("decommission");
                    if self.cfg.flags.handle_decommission_notfound {
                        // Fixed: the cache was stale; drop the target and
                        // let the next reconcile re-derive it.
                        self.stuck_on = None;
                        ctx.annotate("operator.decommission_skipped", target);
                    } else {
                        // Bug 400: wedge on the phantom target forever.
                        ctx.annotate("operator.decommission_stuck", target.clone());
                        ctx.counter_inc("operator.decommission_stuck");
                        self.stuck_on = Some(target);
                    }
                }
                _ => {
                    ctx.span_end("decommission");
                    self.stuck_on = None;
                }
            },
            PendingOp::ConfirmOrphan(pvc_key, _owner_key) => {
                if let Ok(ApiOk::Obj(None)) = result {
                    self.delete_pvc(pvc_key, "orphan-confirmed", ctx);
                }
            }
        }
    }
}

impl Actor for CassandraOperator {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        let instance = self.instance + 1;
        let cfg = self.cfg.clone();
        *self = CassandraOperator::new(cfg);
        self.instance = instance;
        self.client = ApiClient::new(self.cfg.api.clone(), instance);
        ctx.annotate("operator.restart", instance.to_string());
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            if self
                .dcs
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            if self
                .pods
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            if self
                .pvcs
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            if let ApiCompletion::Done { req, result } = c {
                if let Some(op) = self.pending.remove(req) {
                    self.on_done(op, result, ctx);
                }
            }
        }
        // Reconciliation happens on the timer only (the real operator's
        // level-triggered loop) — except terminating-pod observations,
        // which must be recorded as seen.
        for e in &events {
            if let InformerEvent::Updated { new, .. } | InformerEvent::Added(new) = e {
                if new.kind() == crate::objects::ObjectKind::Pod && new.is_terminating() {
                    self.observed_terminating.insert(new.meta.name.clone());
                }
            }
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag == TAG_TICK {
            self.client.tick(ctx);
            self.dcs.poll(&mut self.client, ctx);
            self.pods.poll(&mut self.client, ctx);
            self.pvcs.poll(&mut self.client, ctx);
            self.reconcile(ctx);
            ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_presets() {
        let b = OperatorFlags::buggy();
        assert!(b.pvc_requires_observed_terminating);
        assert!(!b.handle_decommission_notfound);
        assert!(!b.fresh_confirm_orphan);
        let f = OperatorFlags::fixed();
        assert!(!f.pvc_requires_observed_terminating);
        assert!(f.handle_decommission_notfound);
        assert!(f.fresh_confirm_orphan);
        assert_ne!(b, f);
    }

    #[test]
    fn construction() {
        let op = CassandraOperator::new(OperatorConfig {
            api: ApiClientConfig::new(vec![ActorId(0)]),
            sync_interval: Duration::millis(100),
            flags: OperatorFlags::buggy(),
        });
        assert!(op.released().is_empty());
        assert!(op.stuck_on().is_none());
    }
}
