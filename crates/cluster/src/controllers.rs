//! Controllers: the volume controller and the replica-set controller.
//!
//! [`VolumeController`] is the paper's observability-gap case study ([17],
//! §4.2.3): it "only learns of the state of the system via sparse reads of
//! its local view S′" and releases the storage of deleted pods. Its three
//! modes encode the real defect and its (partially) fixed descendants:
//!
//! * [`VcMode::MarkOnly`] — releases a PVC only when it *observes* the
//!   owning pod carrying a deletion timestamp. If the pod is marked (e1)
//!   and deleted (e2) between two reads, the controller never sees e1 and
//!   the PVC leaks — the bug of [17] and cassandra-operator-398.
//! * [`VcMode::CacheOrphan`] — additionally releases PVCs whose owner pod
//!   is missing from the *cached* view. Heals the leak, but a stale cache
//!   now causes it to delete the storage of a live pod —
//!   cassandra-operator-402.
//! * [`VcMode::FreshOrphan`] — confirms the owner's absence with a quorum
//!   read before releasing. Correct on both counts.
//!
//! [`ReplicaSetController`] maintains pod counts for replica sets and is the
//! workload engine: it exercises create → schedule → run → graceful-delete
//! → finalize → release across the whole stack.
//!
//! [`NodeLifecycleController`] judges node health by heartbeat-lease age
//! and — in its aggressive variant — force-evicts pods from unreachable
//! nodes. Force eviction trusts the controller's *view*: a partitioned
//! (not dead) kubelet keeps its containers running, so the replacement
//! pods run concurrently with the originals — the node-fencing safety
//! hazard, same family as the paper's reference \[5\] ("Disallow
//! ApiServer HA for Pod Safety").

use std::collections::BTreeSet;

use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, TimerId};

use crate::api::ApiOk;
use crate::apiclient::{ApiClient, ApiClientConfig, ApiCompletion};
use crate::informer::{Informer, InformerConfig, InformerEvent};
use crate::objects::{Body, Object};

const TAG_TICK: u64 = 1;

/// How the volume controller decides a PVC is releasable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcMode {
    /// Only on an observed deletion timestamp (buggy: leaks on gaps).
    MarkOnly,
    /// Also when the owner is missing from the cache (buggy: deletes live
    /// pods' storage on staleness).
    CacheOrphan,
    /// Orphan check confirmed by a quorum read (fixed).
    FreshOrphan,
}

/// Volume controller tuning.
#[derive(Debug, Clone)]
pub struct VolumeControllerConfig {
    /// How to reach the apiservers.
    pub api: ApiClientConfig,
    /// Sparse-read interval (the controller only looks at its view this
    /// often — the paper's "two sparse reads of S′").
    pub read_interval: Duration,
    /// Release policy.
    pub mode: VcMode,
}

/// The volume controller actor.
#[derive(Debug)]
pub struct VolumeController {
    cfg: VolumeControllerConfig,
    client: ApiClient,
    pods: Informer,
    pvcs: Informer,
    /// PVC keys already released (avoid duplicate deletes).
    released: BTreeSet<String>,
    /// Fresh-confirmation requests in flight: req → (pvc key, owner key).
    confirming: std::collections::BTreeMap<u64, (String, String)>,
}

impl VolumeController {
    /// Creates a volume controller (spawn it into a world).
    pub fn new(cfg: VolumeControllerConfig) -> VolumeController {
        let client = ApiClient::new(cfg.api.clone(), 0);
        VolumeController {
            cfg,
            client,
            pods: Informer::new(InformerConfig::new("pods/")),
            pvcs: Informer::new(InformerConfig::new("pvcs/")),
            released: BTreeSet::new(),
            confirming: std::collections::BTreeMap::new(),
        }
    }

    /// The static access protocol a volume controller built from `cfg`
    /// follows, for the partial-history hazard checker.
    ///
    /// The `terminating-owner` path requires *witnessing* the owner pod's
    /// transient terminating mark ([`ph_lint::summary::Gate::ObservedEvent`]
    /// — the mark exists only between graceful delete and finalization, and
    /// this controller samples its view sparsely), so in `MarkOnly` mode
    /// the release can be missed forever: the §4.2.3 gap of the
    /// volume-controller scenario. Orphan paths gate on the owner's
    /// absence from the cached pod view; only `FreshOrphan` re-confirms
    /// with a quorum read. Target-existence checks (the PVC itself) are
    /// omitted: deleting an already-gone object is an idempotent no-op.
    pub fn access_summary(cfg: &VolumeControllerConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath};
        let mut paths = vec![GatePath::new(
            "terminating-owner",
            vec![Gate::ObservedEvent("pods".into())],
        )];
        match cfg.mode {
            VcMode::MarkOnly => {}
            VcMode::CacheOrphan => paths.push(GatePath::new(
                "orphan-in-cache",
                vec![Gate::CacheAbsence("pods".into())],
            )),
            VcMode::FreshOrphan => paths.push(GatePath::new(
                "orphan-confirmed",
                vec![
                    Gate::CacheAbsence("pods".into()),
                    Gate::FreshConfirm("pods".into()),
                ],
            )),
        }
        AccessSummary {
            component: "volume-controller".into(),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![
                InformerConfig::new("pods/").view_decl(),
                InformerConfig::new("pvcs/").view_decl(),
            ],
            actions: vec![ActionDecl {
                name: "release-pvc".into(),
                destructive: true,
                paths,
            }],
        }
    }

    /// PVC keys this controller has released.
    pub fn released(&self) -> &BTreeSet<String> {
        &self.released
    }

    /// The most-behind frontier across this controller's informers (for
    /// lag sampling).
    pub fn view_revision(&self) -> ph_store::Revision {
        self.pods.revision().min(self.pvcs.revision())
    }

    fn release(&mut self, pvc_key: String, why: &str, ctx: &mut Ctx) {
        if !self.released.insert(pvc_key.clone()) {
            return;
        }
        ctx.annotate("vc.release_pvc", format!("{pvc_key} ({why})"));
        ctx.counter_inc("vc.pvc_releases");
        self.client.delete(pvc_key, None, ctx);
    }

    /// One sparse read of `S′` (the controller's entire decision procedure).
    fn sparse_read(&mut self, ctx: &mut Ctx) {
        if !self.pods.is_synced() || !self.pvcs.is_synced() {
            return;
        }
        ctx.span_begin("reconcile", "volume-controller");
        self.sparse_read_inner(ctx);
        ctx.span_end("reconcile");
    }

    fn sparse_read_inner(&mut self, ctx: &mut Ctx) {
        // Path 1: pods observed carrying a deletion timestamp.
        let mut to_release: Vec<(String, &'static str)> = Vec::new();
        for pod in self.pods.objects() {
            if pod.is_terminating() {
                if let Some(pvc) = pod.pod_pvc() {
                    to_release.push((format!("pvcs/{pvc}"), "terminating-owner"));
                }
            }
        }
        // Path 2 (CacheOrphan / FreshOrphan): PVCs whose owner is gone from
        // the cached pod view.
        let mut to_confirm: Vec<(String, String)> = Vec::new();
        if self.cfg.mode != VcMode::MarkOnly {
            for pvc in self.pvcs.objects() {
                let key = pvc.key().as_str().to_string();
                if self.released.contains(&key) {
                    continue;
                }
                let Some(owner) = &pvc.meta.owner else {
                    continue;
                };
                let owner_key = format!("pods/{owner}");
                if self.pods.get(&owner_key).is_none() {
                    match self.cfg.mode {
                        VcMode::CacheOrphan => to_release.push((key, "orphan-in-cache")),
                        VcMode::FreshOrphan => to_confirm.push((key, owner_key)),
                        VcMode::MarkOnly => unreachable!(),
                    }
                }
            }
        }
        for (key, why) in to_release {
            self.release(key, why, ctx);
        }
        for (pvc_key, owner_key) in to_confirm {
            if self.confirming.values().any(|(p, _)| p == &pvc_key) {
                continue;
            }
            let req = self.client.get(owner_key.clone(), true, ctx);
            self.confirming.insert(req, (pvc_key, owner_key));
        }
    }
}

impl Actor for VolumeController {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.read_interval, TAG_TICK);
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        // Everything here is volatile (view caches and dedup sets rebuild).
        *self = VolumeController::new(self.cfg.clone());
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            if self
                .pods
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            if self
                .pvcs
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            // Fresh-confirmation results.
            if let ApiCompletion::Done { req, result } = c {
                if let Some((pvc_key, _owner)) = self.confirming.remove(req) {
                    if let Ok(ApiOk::Obj(None)) = result {
                        self.release(pvc_key, "orphan-confirmed", ctx);
                    }
                }
            }
        }
        // NOTE: deliberately *no* sparse_read here — the controller only
        // consumes its view on the timer (that is the whole point of the
        // observability-gap pattern).
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag == TAG_TICK {
            self.client.tick(ctx);
            self.pods.poll(&mut self.client, ctx);
            self.pvcs.poll(&mut self.client, ctx);
            self.sparse_read(ctx);
            ctx.set_timer(self.cfg.read_interval, TAG_TICK);
        }
    }
}

/// Replica-set controller tuning.
#[derive(Debug, Clone)]
pub struct ReplicaSetControllerConfig {
    /// How to reach the apiservers.
    pub api: ApiClientConfig,
    /// Reconcile interval.
    pub sync_interval: Duration,
    /// Attach a PVC to every pod the controller creates (feeds the volume
    /// controller workloads).
    pub with_pvcs: bool,
}

/// Maintains `replicas` pods named `{rs}-{i}` per replica set.
#[derive(Debug)]
pub struct ReplicaSetController {
    cfg: ReplicaSetControllerConfig,
    client: ApiClient,
    sets: Informer,
    pods: Informer,
    /// Creates already issued this generation (avoid duplicate creates
    /// racing their own watch events).
    creating: BTreeSet<String>,
}

impl ReplicaSetController {
    /// Creates a replica-set controller (spawn it into a world).
    pub fn new(cfg: ReplicaSetControllerConfig) -> ReplicaSetController {
        let client = ApiClient::new(cfg.api.clone(), 0);
        ReplicaSetController {
            cfg,
            client,
            sets: Informer::new(InformerConfig::new("replicasets/")),
            pods: Informer::new(InformerConfig::new("pods/")),
            creating: BTreeSet::new(),
        }
    }

    /// The static access protocol a replica-set controller built from
    /// `cfg` follows, for the partial-history hazard checker.
    ///
    /// Creates are conflict-guarded and idempotent (non-destructive);
    /// scale-down gracefully deletes the highest-index pod *the cached
    /// view shows*, unfenced — an honest staleness hazard (a stale view
    /// can pick a pod that was already replaced), reported but not
    /// exercised by any scenario.
    pub fn access_summary(cfg: &ReplicaSetControllerConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath};
        AccessSummary {
            component: "rs-controller".into(),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![
                InformerConfig::new("replicasets/").view_decl(),
                InformerConfig::new("pods/").view_decl(),
            ],
            actions: vec![
                ActionDecl {
                    name: "create-pod".into(),
                    destructive: false,
                    paths: vec![GatePath::new(
                        "missing-replica",
                        vec![Gate::CacheAbsence("pods".into())],
                    )],
                },
                ActionDecl {
                    name: "scale-down-pod".into(),
                    destructive: true,
                    paths: vec![GatePath::new(
                        "excess-replica",
                        vec![Gate::CachePresence("pods".into())],
                    )],
                },
            ],
        }
    }

    /// The most-behind frontier across this controller's informers (for
    /// lag sampling).
    pub fn view_revision(&self) -> ph_store::Revision {
        self.sets.revision().min(self.pods.revision())
    }

    fn sync(&mut self, ctx: &mut Ctx) {
        if !self.sets.is_synced() || !self.pods.is_synced() {
            return;
        }
        ctx.span_begin("reconcile", "replicaset-controller");
        self.sync_inner(ctx);
        ctx.span_end("reconcile");
    }

    fn sync_inner(&mut self, ctx: &mut Ctx) {
        let sets: Vec<(String, u32)> = self
            .sets
            .objects()
            .filter_map(|o| match &o.body {
                Body::ReplicaSet { replicas } => Some((o.meta.name.clone(), *replicas)),
                _ => None,
            })
            .collect();
        for (rs, want) in sets {
            let mine: Vec<&Object> = self
                .pods
                .objects()
                .filter(|o| o.meta.owner.as_deref() == Some(rs.as_str()) && !o.is_terminating())
                .collect();
            let have = mine.len() as u32;
            // Creates already in flight for this set count toward the goal,
            // or a lagging informer would trigger runaway duplicate creates.
            let pending = self
                .creating
                .iter()
                .filter(|n| n.starts_with(&format!("{rs}-")))
                .count() as u32;
            if have + pending < want {
                // Create the lowest free indices.
                let used: BTreeSet<String> = mine.iter().map(|o| o.meta.name.clone()).collect();
                let mut created = 0;
                let mut i = 0u32;
                while created < want - have - pending {
                    let name = format!("{rs}-{i}");
                    i += 1;
                    if used.contains(&name) || self.creating.contains(&name) {
                        continue;
                    }
                    let pvc_name = self.cfg.with_pvcs.then(|| format!("{name}-pvc"));
                    if let Some(pvc) = &pvc_name {
                        self.client
                            .create(&Object::pvc(pvc.clone(), name.clone()), ctx);
                    }
                    let mut pod = Object::pod(name.clone(), None, pvc_name);
                    pod.meta.owner = Some(rs.clone());
                    ctx.annotate("rsc.create", name.clone());
                    ctx.counter_inc("rsc.pod_creates");
                    self.client.create(&pod, ctx);
                    self.creating.insert(name);
                    created += 1;
                }
            } else if have > want {
                // Gracefully delete the highest indices.
                let mut names: Vec<String> = mine.iter().map(|o| o.meta.name.clone()).collect();
                names.sort();
                for name in names.into_iter().rev().take((have - want) as usize) {
                    ctx.annotate("rsc.scale_down", name.clone());
                    ctx.counter_inc("rsc.scale_downs");
                    self.client.mark_deleted(format!("pods/{name}"), ctx);
                }
            }
        }
        // Drop create guards once the pod is visible.
        let visible: BTreeSet<String> = self.pods.objects().map(|o| o.meta.name.clone()).collect();
        self.creating.retain(|n| !visible.contains(n));
    }
}

impl Actor for ReplicaSetController {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        *self = ReplicaSetController::new(self.cfg.clone());
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            if !self
                .sets
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                self.pods
                    .on_completion(c, &mut self.client, ctx, &mut events);
            }
        }
        if !events.is_empty() {
            self.sync(ctx);
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag == TAG_TICK {
            self.client.tick(ctx);
            self.sets.poll(&mut self.client, ctx);
            self.pods.poll(&mut self.client, ctx);
            self.sync(ctx);
            ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_modes_are_distinct() {
        assert_ne!(VcMode::MarkOnly, VcMode::CacheOrphan);
        assert_ne!(VcMode::CacheOrphan, VcMode::FreshOrphan);
    }

    #[test]
    fn construction() {
        let vc = VolumeController::new(VolumeControllerConfig {
            api: ApiClientConfig::new(vec![ActorId(0)]),
            read_interval: Duration::millis(100),
            mode: VcMode::MarkOnly,
        });
        assert!(vc.released().is_empty());
        let _rsc = ReplicaSetController::new(ReplicaSetControllerConfig {
            api: ApiClientConfig::new(vec![ActorId(0)]),
            sync_interval: Duration::millis(100),
            with_pvcs: true,
        });
    }
}

/// Node-lifecycle controller tuning.
#[derive(Debug, Clone)]
pub struct NodeLifecycleConfig {
    /// How to reach the apiservers.
    pub api: ApiClientConfig,
    /// Reconcile interval.
    pub sync_interval: Duration,
    /// A node whose lease is older than this is considered unreachable.
    pub lease_grace: Duration,
    /// `true`: force-delete pods bound to unreachable nodes so they get
    /// rescheduled (fast failover, unsafe under partitions — the hazard).
    /// `false`: only mark the node not-ready (safe; availability suffers).
    pub force_evict: bool,
}

/// Marks nodes (not-)ready from heartbeat-lease age and optionally evicts
/// pods from unreachable nodes.
#[derive(Debug)]
pub struct NodeLifecycleController {
    cfg: NodeLifecycleConfig,
    client: ApiClient,
    nodes: Informer,
    leases: Informer,
    pods: Informer,
}

impl NodeLifecycleController {
    /// Creates a node-lifecycle controller (spawn it into a world).
    pub fn new(cfg: NodeLifecycleConfig) -> NodeLifecycleController {
        let client = ApiClient::new(cfg.api.clone(), 0);
        NodeLifecycleController {
            cfg,
            client,
            nodes: Informer::new(InformerConfig::new("nodes/")),
            leases: Informer::new(InformerConfig::new("leases/")),
            pods: Informer::new(InformerConfig::new("pods/")),
        }
    }

    /// The static access protocol a node-lifecycle controller built from
    /// `cfg` follows, for the partial-history hazard checker.
    ///
    /// Readiness flips are reversible status writes (non-destructive).
    /// Force eviction, when enabled, deletes pods because the controller
    /// *stopped hearing* the node's leases — `ObservedSilence` with no
    /// fence: silence cannot distinguish a dead kubelet from a partitioned
    /// one, the §4.2.3 observability gap the node-fencing scenario
    /// exercises.
    pub fn access_summary(cfg: &NodeLifecycleConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath};
        let mut actions = vec![ActionDecl {
            name: "mark-node-ready".into(),
            destructive: false,
            paths: vec![GatePath::new(
                "lease-age",
                vec![Gate::ObservedSilence("leases".into())],
            )],
        }];
        if cfg.force_evict {
            actions.push(ActionDecl {
                name: "force-evict-pod".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "lease-silence",
                    vec![
                        Gate::ObservedSilence("leases".into()),
                        Gate::CachePresence("pods".into()),
                    ],
                )],
            });
        }
        AccessSummary {
            component: "node-lifecycle".into(),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![
                InformerConfig::new("nodes/").view_decl(),
                InformerConfig::new("leases/").view_decl(),
                InformerConfig::new("pods/").view_decl(),
            ],
            actions,
        }
    }

    /// The most-behind frontier across this controller's informers (for
    /// lag sampling).
    pub fn view_revision(&self) -> ph_store::Revision {
        self.nodes
            .revision()
            .min(self.leases.revision())
            .min(self.pods.revision())
    }

    fn sync(&mut self, ctx: &mut Ctx) {
        if !self.nodes.is_synced() || !self.leases.is_synced() || !self.pods.is_synced() {
            return;
        }
        ctx.span_begin("reconcile", "node-lifecycle-controller");
        self.sync_inner(ctx);
        ctx.span_end("reconcile");
    }

    fn sync_inner(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let mut flips: Vec<Object> = Vec::new();
        let mut evict: Vec<String> = Vec::new();
        for node in self.nodes.objects() {
            let Body::Node { ready } = &node.body else {
                continue;
            };
            let fresh = self
                .leases
                .get(&format!("leases/{}", node.meta.name))
                .and_then(|l| match &l.body {
                    Body::Lease { renewed_at_ns, .. } => Some(*renewed_at_ns),
                    _ => None,
                })
                .is_some_and(|at| now.since(ph_sim::SimTime(at)) <= self.cfg.lease_grace);
            if fresh != *ready {
                let mut flipped = node.clone();
                if let Body::Node { ready } = &mut flipped.body {
                    *ready = fresh;
                }
                ctx.annotate(
                    if fresh { "nlc.ready" } else { "nlc.not_ready" },
                    node.meta.name.clone(),
                );
                flips.push(flipped);
            }
            if !fresh && self.cfg.force_evict {
                for pod in self.pods.objects() {
                    if pod.pod_node() == Some(node.meta.name.as_str()) && !pod.is_terminating() {
                        evict.push(pod.meta.name.clone());
                    }
                }
            }
        }
        for node in flips {
            self.client.update(&node, ctx);
        }
        for pod in evict {
            // Force eviction: delete the pod object outright so its
            // controller replaces it — trusting the view that the node is
            // gone. The kubelet may merely be partitioned.
            ctx.annotate("nlc.force_evict", pod.clone());
            ctx.counter_inc("nlc.force_evictions");
            self.client.delete(format!("pods/{pod}"), None, ctx);
        }
    }
}

impl Actor for NodeLifecycleController {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        *self = NodeLifecycleController::new(self.cfg.clone());
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            if self
                .nodes
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            if self
                .leases
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                continue;
            }
            self.pods
                .on_completion(c, &mut self.client, ctx, &mut events);
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag == TAG_TICK {
            self.client.tick(ctx);
            self.nodes.poll(&mut self.client, ctx);
            self.leases.poll(&mut self.client, ctx);
            self.pods.poll(&mut self.client, ctx);
            self.sync(ctx);
            ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
        }
    }
}
