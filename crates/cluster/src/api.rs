//! Wire messages between components and apiservers.
//!
//! The API mirrors Kubernetes' observation semantics (§3): reads default to
//! being served from the contacted apiserver's *watch cache* (fast, possibly
//! stale); a `fresh` read forces a quorum read through the store. Watches
//! are served from the cache and resume by resource version, subject to the
//! apiserver's rolling event window ([7] in the paper): resuming below the
//! window fails with [`ApiError::TooOldResourceVersion`].

use ph_store::{Revision, Value};

/// An operation requested of an apiserver.
#[derive(Debug, Clone)]
pub enum Verb {
    /// Read one object.
    Get {
        /// Store key (`"pods/p1"`).
        key: String,
        /// `true` forces a linearizable read through the store; `false`
        /// serves from the apiserver's cache (default Kubernetes behaviour).
        fresh: bool,
    },
    /// Read all objects with a key prefix.
    List {
        /// Key prefix (`"pods/"`).
        prefix: String,
        /// As in [`Verb::Get`].
        fresh: bool,
    },
    /// Create an object (fails if it exists).
    Create {
        /// Store key.
        key: String,
        /// Encoded object.
        value: Value,
    },
    /// Update an object, optionally guarded by its resource version.
    Update {
        /// Store key.
        key: String,
        /// Encoded object.
        value: Value,
        /// Optimistic-concurrency precondition (`None` = last-writer-wins).
        expect_rv: Option<Revision>,
    },
    /// Delete an object outright, optionally guarded.
    Delete {
        /// Store key.
        key: String,
        /// Optimistic-concurrency precondition.
        expect_rv: Option<Revision>,
    },
    /// Graceful deletion: set the object's `deletionTimestamp` (the object
    /// stays visible until its manager finalizes and deletes it).
    MarkDeleted {
        /// Store key.
        key: String,
    },
}

impl Verb {
    /// The key or prefix this verb touches (for tracing).
    pub fn target(&self) -> &str {
        match self {
            Verb::Get { key, .. }
            | Verb::Create { key, .. }
            | Verb::Update { key, .. }
            | Verb::Delete { key, .. }
            | Verb::MarkDeleted { key } => key,
            Verb::List { prefix, .. } => prefix,
        }
    }
}

/// Nominal wire framing per message (headers, ids, revisions). The sim's
/// network only reads these sizes on finite-bandwidth links; on the default
/// infinite-bandwidth links they are inert.
pub const WIRE_OVERHEAD: u64 = 64;
/// Nominal encoded size of one object item beyond its value bytes (key,
/// revision, type tag).
pub const ITEM_OVERHEAD: u64 = 48;

/// A request to an apiserver.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Client-chosen request id, echoed in the response.
    pub req: u64,
    /// The operation.
    pub verb: Verb,
}

impl ApiRequest {
    /// Estimated encoded size, for finite-bandwidth links.
    pub fn wire_bytes(&self) -> u64 {
        WIRE_OVERHEAD
            + match &self.verb {
                Verb::Create { key, value } | Verb::Update { key, value, .. } => {
                    ITEM_OVERHEAD + key.len() as u64 + value.len() as u64
                }
                v => v.target().len() as u64,
            }
    }
}

/// Successful outcome of an [`ApiRequest`].
#[derive(Debug, Clone)]
pub enum ApiOk {
    /// Get result: the object bytes and resource version, or `None` if the
    /// key does not exist.
    Obj(Option<(Value, Revision)>),
    /// List result: `(value, resource_version)` pairs in key order, plus
    /// the collection's resource version (the view's frontier).
    List {
        /// The objects.
        items: Vec<(String, Value, Revision)>,
        /// Frontier revision of the serving view.
        revision: Revision,
    },
    /// A write committed at this revision.
    Written(Revision),
    /// A delete committed (`existed` tells whether anything was removed).
    Deleted {
        /// Whether the key existed.
        existed: bool,
    },
}

/// Failure of an [`ApiRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// CAS precondition failed; carries the key's actual resource version
    /// (`None` = does not exist).
    Conflict(Option<Revision>),
    /// Create of an existing key, or mutation of a missing one.
    NotFound,
    /// Create collided with an existing object.
    AlreadyExists,
    /// The apiserver cannot reach the store right now; retry.
    Unavailable,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Conflict(rv) => write!(f, "conflict (actual rv {rv:?})"),
            ApiError::NotFound => write!(f, "not found"),
            ApiError::AlreadyExists => write!(f, "already exists"),
            ApiError::Unavailable => write!(f, "apiserver unavailable"),
        }
    }
}
impl std::error::Error for ApiError {}

/// An apiserver's reply.
#[derive(Debug, Clone)]
pub struct ApiResponse {
    /// Echoed request id.
    pub req: u64,
    /// Outcome.
    pub result: Result<ApiOk, ApiError>,
}

impl ApiResponse {
    /// Estimated encoded size, for finite-bandwidth links. List replies
    /// dominate: they carry every object in the prefix, which is what makes
    /// relist storms saturate a throttled feed.
    pub fn wire_bytes(&self) -> u64 {
        WIRE_OVERHEAD
            + match &self.result {
                Ok(ApiOk::List { items, .. }) => items
                    .iter()
                    .map(|(k, v, _)| ITEM_OVERHEAD + k.len() as u64 + v.len() as u64)
                    .sum(),
                Ok(ApiOk::Obj(Some((v, _)))) => ITEM_OVERHEAD + v.len() as u64,
                _ => 0,
            }
    }
}

/// One object-level change on a watch stream.
#[derive(Debug, Clone)]
pub struct ObjEvent {
    /// The object's store key.
    pub key: String,
    /// Revision at which the change committed.
    pub revision: Revision,
    /// New object bytes (`None` = the object was deleted).
    pub value: Option<Value>,
}

impl ObjEvent {
    /// `true` for deletions.
    pub fn is_delete(&self) -> bool {
        self.value.is_none()
    }

    /// Estimated encoded size, for finite-bandwidth links.
    pub fn wire_bytes(&self) -> u64 {
        ITEM_OVERHEAD
            + self.key.len() as u64
            + self.value.as_ref().map(|v| v.len() as u64).unwrap_or(0)
    }
}

/// Opens a watch on an apiserver.
#[derive(Debug, Clone)]
pub struct ApiWatchCreate {
    /// Client-chosen watch id.
    pub watch: u64,
    /// Key prefix filter.
    pub prefix: String,
    /// Deliver events strictly after this revision ([`Revision::ZERO`] =
    /// from the apiserver's current cache state).
    pub after: Revision,
}

/// Cancels a watch.
#[derive(Debug, Clone)]
pub struct ApiWatchCancelReq {
    /// The watch.
    pub watch: u64,
}

/// A batch of events on a watch stream.
#[derive(Debug, Clone)]
pub struct ApiWatchEvent {
    /// The watch.
    pub watch: u64,
    /// Per-watch stream sequence number (dense from 0 per registration);
    /// a gap means the network lost a stream message and the client must
    /// reconnect from its last contiguous revision.
    pub stream_seq: u64,
    /// Events in revision order (shared with the apiserver's window —
    /// fan-out to N watchers bumps refcounts, never deep-copies).
    pub events: Vec<std::rc::Rc<ObjEvent>>,
    /// The serving apiserver's cache revision after this batch.
    pub revision: Revision,
}

impl ApiWatchEvent {
    /// Estimated encoded size, for finite-bandwidth links.
    pub fn wire_bytes(&self) -> u64 {
        WIRE_OVERHEAD + self.events.iter().map(|e| e.wire_bytes()).sum::<u64>()
    }
}

/// Idle-stream progress notification.
#[derive(Debug, Clone)]
pub struct ApiWatchProgress {
    /// The watch.
    pub watch: u64,
    /// Stream sequence number (shared counter with [`ApiWatchEvent`]).
    pub stream_seq: u64,
    /// The serving apiserver's cache revision.
    pub revision: Revision,
}

/// Server-initiated watch termination.
#[derive(Debug, Clone)]
pub struct ApiWatchCancelled {
    /// The watch.
    pub watch: u64,
    /// Why.
    pub reason: WatchError,
}

/// Why a watch was refused or cancelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchError {
    /// The requested resume revision predates the apiserver's rolling event
    /// window — the client must re-list ([7]; §4.2.3).
    TooOldResourceVersion {
        /// Oldest revision still in the window.
        oldest: Revision,
    },
    /// The apiserver's own cache is not serving yet; re-list (and thereby
    /// re-watch) once it is.
    NotReady,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_targets() {
        assert_eq!(
            Verb::Get {
                key: "pods/p1".into(),
                fresh: false
            }
            .target(),
            "pods/p1"
        );
        assert_eq!(
            Verb::List {
                prefix: "pods/".into(),
                fresh: true
            }
            .target(),
            "pods/"
        );
        assert_eq!(
            Verb::MarkDeleted {
                key: "pods/x".into()
            }
            .target(),
            "pods/x"
        );
    }

    #[test]
    fn obj_event_delete_detection() {
        let e = ObjEvent {
            key: "pods/p1".into(),
            revision: Revision(4),
            value: None,
        };
        assert!(e.is_delete());
        let e = ObjEvent {
            value: Some(Value::from_static(b"x")),
            ..e
        };
        assert!(!e.is_delete());
    }

    #[test]
    fn api_error_displays() {
        assert!(ApiError::Conflict(Some(Revision(2)))
            .to_string()
            .contains("conflict"));
        assert_eq!(ApiError::NotFound.to_string(), "not found");
    }
}
