//! The scheduler: binds pending pods to nodes.
//!
//! The scheduler keeps pod and node informers and, every sync, binds each
//! unscheduled pod to the least-loaded node *in its cached view*. This is
//! the component of Kubernetes-56261 (§4.2.3): if the cache missed a node
//! deletion (a dropped notification), the scheduler keeps placing pods on
//! the ghost node forever — the pods never run.
//!
//! * **buggy** (`fixed = false`): purely event-driven cache, no recovery —
//!   the upstream defect ("scheduler should delete a node from its cache if
//!   it gets 'node not found'").
//! * **fixed** (`fixed = true`): the node informer re-lists periodically
//!   (healing interior gaps), and pods found bound to nonexistent nodes are
//!   rebound.

use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, TimerId};

use crate::apiclient::{ApiClient, ApiClientConfig};
use crate::informer::{Informer, InformerConfig, InformerEvent};
use crate::objects::{Body, Object};

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// How to reach the apiservers.
    pub api: ApiClientConfig,
    /// Scheduling interval.
    pub sync_interval: Duration,
    /// `true` enables the recovery behaviours (periodic node re-list +
    /// rebinding off ghost nodes).
    pub fixed: bool,
    /// Node-informer re-list period in the fixed variant.
    pub resync_interval: Duration,
    /// `true` when the apiserver→scheduler feed rides a finite-bandwidth
    /// link, so offered load alone can age this scheduler's views. Purely a
    /// static declaration (threaded into [`InformerConfig::congestible`]);
    /// the link itself is configured on the world's network.
    pub congestible_feed: bool,
}

const TAG_TICK: u64 = 1;

/// The scheduler actor.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    client: ApiClient,
    pods: Informer,
    nodes: Informer,
    /// In-flight binding decisions not yet reflected by the informer
    /// (kube-scheduler's "assumed pods"): pod name → (node, assumed-at).
    /// Counted into the load map so one burst of pods still spreads
    /// correctly; expires so a lost/conflicted bind write is retried.
    assumed: std::collections::BTreeMap<String, (String, ph_sim::SimTime)>,
}

impl Scheduler {
    /// Creates a scheduler (spawn it into a world).
    pub fn new(cfg: SchedulerConfig) -> Scheduler {
        let client = ApiClient::new(cfg.api.clone(), 0);
        // The fixed variant re-lists BOTH informers periodically (real
        // schedulers run periodic resyncs); the buggy variant trusts its
        // event streams forever.
        let pods = Informer::new(InformerConfig {
            prefix: "pods/".into(),
            fresh_lists: false,
            resync_interval: cfg.fixed.then_some(cfg.resync_interval),
            congestible: cfg.congestible_feed,
        });
        let nodes = Informer::new(InformerConfig {
            prefix: "nodes/".into(),
            fresh_lists: cfg.fixed,
            resync_interval: cfg.fixed.then_some(cfg.resync_interval),
            congestible: cfg.congestible_feed,
        });
        Scheduler {
            cfg,
            client,
            pods,
            nodes,
            assumed: std::collections::BTreeMap::new(),
        }
    }

    /// The static access protocol a scheduler built from `cfg` follows,
    /// for the partial-history hazard checker.
    ///
    /// Binding is modeled destructive: a bind is a commitment — a pod
    /// bound to a node that no longer exists is stranded (the
    /// Kubernetes-56261 outcome). The buggy variant gates binds on a
    /// cache-listed, never-resynced node view; the fix quorum-lists nodes
    /// and resyncs both informers, discharging the staleness hazard.
    pub fn access_summary(cfg: &SchedulerConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath};
        let pods = InformerConfig {
            prefix: "pods/".into(),
            fresh_lists: false,
            resync_interval: cfg.fixed.then_some(cfg.resync_interval),
            congestible: cfg.congestible_feed,
        };
        let nodes = InformerConfig {
            prefix: "nodes/".into(),
            fresh_lists: cfg.fixed,
            resync_interval: cfg.fixed.then_some(cfg.resync_interval),
            congestible: cfg.congestible_feed,
        };
        let mut actions = vec![ActionDecl {
            name: "bind-pod".into(),
            destructive: true,
            paths: vec![GatePath::new(
                "unbound-pod-to-cached-node",
                vec![
                    Gate::CachePresence("pods".into()),
                    Gate::CachePresence("nodes".into()),
                ],
            )],
        }];
        if cfg.fixed {
            actions.push(ActionDecl {
                name: "rebind-pod".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "bound-node-vanished",
                    vec![
                        Gate::CachePresence("pods".into()),
                        Gate::CacheAbsence("nodes".into()),
                    ],
                )],
            });
        }
        AccessSummary {
            component: "scheduler".into(),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![pods.view_decl(), nodes.view_decl()],
            actions,
        }
    }

    /// The scheduler's cached node names (its `S′` of the node space).
    pub fn cached_nodes(&self) -> Vec<String> {
        self.nodes.objects().map(|o| o.meta.name.clone()).collect()
    }

    /// The most-behind frontier across this scheduler's informers (for lag
    /// sampling: the stalest view bounds what it can know).
    pub fn view_revision(&self) -> ph_store::Revision {
        self.pods.revision().min(self.nodes.revision())
    }

    fn sync(&mut self, ctx: &mut Ctx) {
        if !self.pods.is_synced() || !self.nodes.is_synced() {
            return;
        }
        ctx.span_begin("reconcile", "scheduler");
        self.sync_inner(ctx);
        ctx.span_end("reconcile");
    }

    fn sync_inner(&mut self, ctx: &mut Ctx) {
        // Forget assumptions the informer has confirmed (pod bound),
        // obsoleted (pod gone), or that have expired (the bind write was
        // lost or lost a conflict — retry).
        let now = ctx.now();
        let expiry = self.cfg.sync_interval.times(20);
        self.assumed.retain(|pod, (_, at)| {
            now.since(*at) < expiry
                && self
                    .pods
                    .get(&format!("pods/{pod}"))
                    .is_some_and(|o| o.pod_node().is_none())
        });
        let node_names: Vec<String> = self
            .nodes
            .objects()
            .filter(|o| matches!(o.body, Body::Node { ready: true }))
            .map(|o| o.meta.name.clone())
            .collect();
        if node_names.is_empty() {
            return;
        }
        // Load = bound pods per node, from the cached view; updated as this
        // pass makes binding decisions so one sync spreads pods evenly.
        let mut load: std::collections::BTreeMap<String, usize> =
            node_names.iter().map(|n| (n.clone(), 0)).collect();
        for obj in self.pods.objects() {
            let node = obj
                .pod_node()
                .map(str::to_string)
                .or_else(|| self.assumed.get(&obj.meta.name).map(|(n, _)| n.clone()));
            if let Some(n) = node {
                if let Some(c) = load.get_mut(&n) {
                    *c += 1;
                }
            }
        }
        let pick = |load: &std::collections::BTreeMap<String, usize>| -> Option<String> {
            load.iter()
                .min_by_key(|(name, c)| (**c, (*name).clone()))
                .map(|(name, _)| name.clone())
        };

        let mut binds: Vec<(Object, String)> = Vec::new();
        for obj in self.pods.objects() {
            if obj.is_terminating() {
                continue;
            }
            match obj.pod_node() {
                None if self.assumed.contains_key(&obj.meta.name) => {
                    // Already decided; waiting for the write to surface.
                }
                None => {
                    if let Some(target) = pick(&load) {
                        *load.get_mut(&target).expect("picked from map") += 1;
                        binds.push((obj.clone(), target));
                    }
                }
                Some(n) if self.cfg.fixed && self.nodes.get(&format!("nodes/{n}")).is_none() => {
                    // Fixed variant: the pod is bound to a node whose
                    // object no longer EXISTS — rebind it. (A merely
                    // not-ready node keeps its pods: rebinding off an
                    // unreachable-but-alive node would duplicate execution,
                    // the node-fencing hazard.)
                    if let Some(target) = pick(&load) {
                        *load.get_mut(&target).expect("picked from map") += 1;
                        ctx.annotate(
                            "scheduler.rebind",
                            format!("{}:{}->{}", obj.meta.name, n, target),
                        );
                        ctx.counter_inc("scheduler.rebinds");
                        binds.push((obj.clone(), target));
                    }
                }
                Some(_) => {}
            }
        }
        for (obj, target) in binds {
            let mut bound = obj.clone();
            if let Body::Pod { node, .. } = &mut bound.body {
                *node = Some(target.clone());
            }
            ctx.annotate("scheduler.bind", format!("{}->{}", obj.meta.name, target));
            ctx.counter_inc("scheduler.binds");
            self.assumed
                .insert(obj.meta.name.clone(), (target, ctx.now()));
            self.client.update(&bound, ctx);
        }
    }
}

impl Actor for Scheduler {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        let fresh = Scheduler::new(self.cfg.clone());
        *self = fresh;
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            if !self
                .pods
                .on_completion(c, &mut self.client, ctx, &mut events)
            {
                self.nodes
                    .on_completion(c, &mut self.client, ctx, &mut events);
            }
        }
        if !events.is_empty() {
            self.sync(ctx);
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag == TAG_TICK {
            self.client.tick(ctx);
            self.pods.poll(&mut self.client, ctx);
            self.nodes.poll(&mut self.client, ctx);
            self.sync(ctx);
            ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let s = Scheduler::new(SchedulerConfig {
            api: ApiClientConfig::new(vec![ActorId(1)]),
            sync_interval: Duration::millis(50),
            fixed: true,
            resync_interval: Duration::millis(500),
            congestible_feed: false,
        });
        assert!(s.cached_nodes().is_empty());
    }
}
