//! Cluster assembly: spawn a whole Figure-1 stack in one call.
//!
//! [`spawn_cluster`] builds, in order: the replicated store, the
//! apiservers (each pinned to a different store member, like production
//! deployments), the kubelets (one per node name), and the optional
//! control-plane components. It also spawns an *admin* client used to seed
//! and mutate objects from scenarios, and exposes the ground-truth state
//! `S` for oracles.

use std::collections::BTreeMap;

use ph_sim::{ActorId, Duration, SimTime, World};
use ph_store::client::BasicClient;
use ph_store::msgs::Expect;
use ph_store::node::StoreNodeConfig;
use ph_store::{
    spawn_store_cluster, OpResult, Revision, StoreClient, StoreClientConfig, StoreCluster,
    StoreNode,
};

use crate::apiclient::{ApiClientConfig, PickPolicy};
use crate::apiserver::{ApiServer, ApiServerConfig};
use crate::controllers::{
    NodeLifecycleConfig, NodeLifecycleController, ReplicaSetController, ReplicaSetControllerConfig,
    VcMode, VolumeController, VolumeControllerConfig,
};
use crate::kubelet::{Kubelet, KubeletConfig};
use crate::objects::Object;
use crate::operator::{CassandraOperator, OperatorConfig, OperatorFlags};
use crate::scheduler::{Scheduler, SchedulerConfig};

/// What to build.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Store cluster size (1–9 in the systems the paper surveys).
    pub store_nodes: usize,
    /// Number of apiservers.
    pub apiservers: usize,
    /// Kubelet node names (a kubelet and a `Node` object are created for
    /// each — seed the `Node` objects with [`ClusterHandle::create_object`]).
    pub nodes: Vec<String>,
    /// How kubelets pick their apiserver.
    pub kubelet_pick: PickPolicy,
    /// Under `ByInstance`, stagger kubelets' *initial* apiservers across the
    /// fleet (kubelet i starts on apiserver i). Disable to have every
    /// kubelet start on apiserver 1 and only diverge on restarts — the
    /// Kubernetes-59848 topology.
    pub kubelet_stagger: bool,
    /// Kubelet variant (`true` = quorum-read lists, the 59848 fix).
    pub kubelet_fixed: bool,
    /// Spawn a scheduler? (`Some(fixed)`)
    pub scheduler: Option<bool>,
    /// Declare the scheduler's apiserver feed congestible (finite
    /// bandwidth). Static declaration only — scenarios that set this must
    /// also throttle the corresponding network link so the dynamic world
    /// matches what the hazard checker is told.
    pub scheduler_congestible: bool,
    /// Spawn a volume controller with this release policy?
    pub volume_controller: Option<VcMode>,
    /// Spawn a replica-set controller? (`Some(with_pvcs)`)
    pub rs_controller: Option<bool>,
    /// Spawn a Cassandra operator with these defect switches?
    pub operator: Option<OperatorFlags>,
    /// Spawn a node-lifecycle controller? (`Some(force_evict)`; also turns
    /// on kubelet heartbeat leases.)
    pub node_lifecycle: Option<bool>,
    /// Store node tuning.
    pub store: StoreNodeConfig,
    /// Component reconcile interval.
    pub sync_interval: Duration,
    /// Kubelet termination grace period.
    pub termination_grace: Duration,
    /// Apiserver watch-cache shard count (internal layout only; runs are
    /// byte-identical across shard counts).
    pub api_shards: usize,
    /// Apiserver watch-event window length, in events.
    pub api_window: usize,
    /// Emit apiserver scale gauges (objects / peak window entries). Off by
    /// default so existing scenario exports stay byte-identical.
    pub api_scale_telemetry: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            store_nodes: 3,
            apiservers: 2,
            nodes: vec!["node-1".into(), "node-2".into()],
            kubelet_pick: PickPolicy::ByInstance,
            kubelet_stagger: true,
            kubelet_fixed: false,
            scheduler: None,
            scheduler_congestible: false,
            volume_controller: None,
            rs_controller: None,
            operator: None,
            node_lifecycle: None,
            store: StoreNodeConfig::default(),
            sync_interval: Duration::millis(50),
            termination_grace: Duration::millis(200),
            api_shards: 1,
            api_window: 100,
            api_scale_telemetry: false,
        }
    }
}

/// Handle to a spawned cluster.
#[derive(Debug, Clone)]
pub struct ClusterHandle {
    /// The store cluster.
    pub store: StoreCluster,
    /// Apiserver actor ids, in index order.
    pub apiservers: Vec<ActorId>,
    /// Kubelet actor ids, in `nodes` order.
    pub kubelets: Vec<ActorId>,
    /// The scheduler, if configured.
    pub scheduler: Option<ActorId>,
    /// The volume controller, if configured.
    pub volume_controller: Option<ActorId>,
    /// The replica-set controller, if configured.
    pub rs_controller: Option<ActorId>,
    /// The Cassandra operator, if configured.
    pub operator: Option<ActorId>,
    /// The node-lifecycle controller, if configured.
    pub node_lifecycle: Option<ActorId>,
    /// The admin client (store-level) used by scenarios to seed/mutate.
    pub admin: ActorId,
}

/// The control-plane component configurations a [`ClusterConfig`] implies,
/// resolved against a concrete apiserver list.
///
/// Extracted from [`spawn_cluster`] so the *exact same* configurations
/// feed both the dynamic world and the static hazard checker
/// ([`access_summaries`]) — the static pass analyzes what actually runs,
/// not a parallel description that could drift.
#[derive(Debug, Clone)]
pub struct ComponentConfigs {
    /// One per entry of [`ClusterConfig::nodes`], in order.
    pub kubelets: Vec<KubeletConfig>,
    /// The scheduler, if configured.
    pub scheduler: Option<SchedulerConfig>,
    /// The volume controller, if configured.
    pub volume_controller: Option<VolumeControllerConfig>,
    /// The replica-set controller, if configured.
    pub rs_controller: Option<ReplicaSetControllerConfig>,
    /// The Cassandra operator, if configured.
    pub operator: Option<OperatorConfig>,
    /// The node-lifecycle controller, if configured.
    pub node_lifecycle: Option<NodeLifecycleConfig>,
}

/// Builds the component configurations `cfg` implies, given the apiserver
/// actor ids (placeholders suffice for static analysis).
pub fn component_configs(cfg: &ClusterConfig, apiservers: &[ActorId]) -> ComponentConfigs {
    let api_cfg = |pick: PickPolicy| {
        let mut c = ApiClientConfig::new(apiservers.to_vec());
        c.pick = pick;
        c
    };

    let kubelets = cfg
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut api = api_cfg(cfg.kubelet_pick);
            if cfg.kubelet_pick == PickPolicy::ByInstance && cfg.kubelet_stagger {
                // Stagger initial upstreams: kubelet i starts on apiserver i.
                api.apiservers.rotate_left(i % apiservers.len().max(1));
            }
            KubeletConfig {
                node: node.clone(),
                api,
                sync_interval: cfg.sync_interval,
                termination_grace: cfg.termination_grace,
                fixed: cfg.kubelet_fixed,
                lease_interval: cfg.node_lifecycle.map(|_| Duration::millis(200)),
            }
        })
        .collect();

    ComponentConfigs {
        kubelets,
        scheduler: cfg.scheduler.map(|fixed| SchedulerConfig {
            api: api_cfg(PickPolicy::Pinned(0)),
            sync_interval: cfg.sync_interval,
            fixed,
            resync_interval: Duration::millis(500),
            congestible_feed: cfg.scheduler_congestible,
        }),
        volume_controller: cfg.volume_controller.map(|mode| VolumeControllerConfig {
            api: api_cfg(PickPolicy::Pinned(apiservers.len().saturating_sub(1))),
            read_interval: cfg.sync_interval.times(2),
            mode,
        }),
        rs_controller: cfg
            .rs_controller
            .map(|with_pvcs| ReplicaSetControllerConfig {
                api: api_cfg(PickPolicy::Pinned(0)),
                sync_interval: cfg.sync_interval,
                with_pvcs,
            }),
        operator: cfg.operator.map(|flags| OperatorConfig {
            api: api_cfg(PickPolicy::ByInstance),
            sync_interval: cfg.sync_interval,
            flags,
        }),
        node_lifecycle: cfg.node_lifecycle.map(|force_evict| NodeLifecycleConfig {
            api: api_cfg(PickPolicy::Pinned(0)),
            sync_interval: cfg.sync_interval.times(2),
            lease_grace: Duration::millis(800),
            force_evict,
        }),
    }
}

/// The [`ph_lint::summary::AccessSummary`] of every component `cfg` would
/// spawn — the input to the static partial-history hazard checker. Uses
/// placeholder apiserver ids; only their *count* matters statically (it
/// decides whether an upstream switch is possible).
pub fn access_summaries(cfg: &ClusterConfig) -> Vec<ph_lint::summary::AccessSummary> {
    let apiservers: Vec<ActorId> = (0..cfg.apiservers as u32).map(ActorId).collect();
    let cc = component_configs(cfg, &apiservers);
    let mut out = Vec::new();
    for kc in &cc.kubelets {
        out.push(Kubelet::access_summary(kc));
    }
    if let Some(sc) = &cc.scheduler {
        out.push(Scheduler::access_summary(sc));
    }
    if let Some(vc) = &cc.volume_controller {
        out.push(VolumeController::access_summary(vc));
    }
    if let Some(rc) = &cc.rs_controller {
        out.push(ReplicaSetController::access_summary(rc));
    }
    if let Some(oc) = &cc.operator {
        out.push(CassandraOperator::access_summary(oc));
    }
    if let Some(nc) = &cc.node_lifecycle {
        out.push(NodeLifecycleController::access_summary(nc));
    }
    out
}

/// The complete declared-summary set for the IR ↔ source conformance
/// pass: every component the tree implements, in its fully-guarded
/// (fixed) variant so all declared gates are present, plus the
/// apiserver's own summary — which [`access_summaries`] omits because the
/// apiserver performs no destructive actions, but the scanner still finds
/// its informer-like store view and must see a matching declaration.
pub fn declared_access_summaries() -> Vec<ph_lint::summary::AccessSummary> {
    let cfg = ClusterConfig {
        kubelet_fixed: true,
        scheduler: Some(true),
        volume_controller: Some(VcMode::FreshOrphan),
        rs_controller: Some(true),
        operator: Some(OperatorFlags::fixed()),
        node_lifecycle: Some(true),
        ..ClusterConfig::default()
    };
    let mut out = access_summaries(&cfg);
    out.push(ApiServer::access_summary(&ApiServerConfig::new(
        StoreClientConfig::new(Vec::new()),
    )));
    out
}

/// Spawns the full stack described by `cfg`.
pub fn spawn_cluster(world: &mut World, cfg: &ClusterConfig) -> ClusterHandle {
    let store = spawn_store_cluster(world, cfg.store_nodes, cfg.store);

    let mut apiservers = Vec::with_capacity(cfg.apiservers);
    for i in 0..cfg.apiservers {
        let mut scc = StoreClientConfig::new(store.nodes.clone());
        scc.affinity = Some(i % cfg.store_nodes);
        let mut api_cfg = ApiServerConfig::new(scc);
        api_cfg.window = cfg.api_window;
        api_cfg.shards = cfg.api_shards;
        api_cfg.scale_telemetry = cfg.api_scale_telemetry;
        let id = world.spawn(&format!("apiserver-{}", i + 1), ApiServer::new(api_cfg));
        apiservers.push(id);
    }

    let cc = component_configs(cfg, &apiservers);

    let mut kubelets = Vec::with_capacity(cc.kubelets.len());
    for kc in cc.kubelets {
        let name = format!("kubelet-{}", kc.node);
        kubelets.push(world.spawn(&name, Kubelet::new(kc)));
    }

    let scheduler = cc
        .scheduler
        .map(|sc| world.spawn("scheduler", Scheduler::new(sc)));

    let volume_controller = cc
        .volume_controller
        .map(|vc| world.spawn("volume-controller", VolumeController::new(vc)));

    let rs_controller = cc
        .rs_controller
        .map(|rc| world.spawn("rs-controller", ReplicaSetController::new(rc)));

    let operator = cc
        .operator
        .map(|oc| world.spawn("cassandra-operator", CassandraOperator::new(oc)));

    let node_lifecycle = cc
        .node_lifecycle
        .map(|nc| world.spawn("node-lifecycle", NodeLifecycleController::new(nc)));

    let admin = world.spawn(
        "admin",
        BasicClient::new(
            StoreClient::new(StoreClientConfig::new(store.nodes.clone())),
            Duration::millis(20),
        ),
    );

    ClusterHandle {
        store,
        apiservers,
        kubelets,
        scheduler,
        volume_controller,
        rs_controller,
        operator,
        node_lifecycle,
        admin,
    }
}

impl ClusterHandle {
    /// Runs the world until the store has a leader and every apiserver is
    /// serving. Returns `false` on timeout.
    pub fn wait_ready(&self, world: &mut World, deadline: SimTime) -> bool {
        loop {
            let leader = self.store.leader(world).is_some();
            let ready = self.apiservers.iter().all(|&a| {
                world
                    .actor_ref::<ApiServer>(a)
                    .is_some_and(|s| s.is_ready())
            });
            if leader && ready {
                return true;
            }
            match world.peek_next() {
                Some(at) if at <= deadline => {
                    world.step();
                }
                _ => return false,
            }
        }
    }

    /// Creates (or overwrites) an object directly in the store, waiting for
    /// the commit. Returns the commit revision, or `None` on timeout.
    pub fn create_object(
        &self,
        world: &mut World,
        obj: &Object,
        deadline: SimTime,
    ) -> Option<Revision> {
        let key = obj.key().as_str().to_string();
        let value = obj.encode();
        let req = world
            .invoke::<BasicClient, _>(self.admin, move |bc, ctx| bc.client.put(key, value, ctx));
        self.await_admin(world, req, deadline)
            .and_then(|r| match r {
                OpResult::Put { revision } => Some(revision),
                _ => None,
            })
    }

    /// Deletes a key directly in the store, waiting for the commit.
    pub fn delete_key(&self, world: &mut World, key: &str, deadline: SimTime) -> bool {
        let key = key.to_string();
        let req = world.invoke::<BasicClient, _>(self.admin, move |bc, ctx| {
            bc.client.delete(key, Expect::Any, ctx)
        });
        self.await_admin(world, req, deadline).is_some()
    }

    fn await_admin(&self, world: &mut World, req: u64, deadline: SimTime) -> Option<OpResult> {
        loop {
            if let Some(result) = world
                .actor_ref::<BasicClient>(self.admin)
                .expect("admin client")
                .result_of(req)
            {
                return result.clone().ok();
            }
            match world.peek_next() {
                Some(at) if at <= deadline => {
                    world.step();
                }
                _ => return None,
            }
        }
    }

    /// The ground-truth state `S`: every object in the store, decoded, as
    /// seen by the most caught-up live store node. Oracles compare views
    /// against this.
    pub fn ground_truth(&self, world: &World) -> BTreeMap<String, Object> {
        let node = self.store.leader(world).or_else(|| {
            self.store
                .nodes
                .iter()
                .copied()
                .filter(|&n| !world.is_crashed(n))
                .max_by_key(|&n| {
                    world
                        .actor_ref::<StoreNode>(n)
                        .map(|s| s.mvcc().revision())
                        .unwrap_or(Revision::ZERO)
                })
        });
        let mut out = BTreeMap::new();
        if let Some(n) = node {
            if let Some(store) = world.actor_ref::<StoreNode>(n) {
                for kv in store.mvcc().range("").0 {
                    if let Ok(obj) = Object::from_kv(&kv) {
                        out.insert(kv.key.as_str().to_string(), obj);
                    }
                }
            }
        }
        out
    }

    /// The retained ground-truth history `H` (KV events) from the same
    /// node as [`ClusterHandle::ground_truth`].
    pub fn ground_history(&self, world: &World) -> Vec<std::rc::Rc<ph_store::KvEvent>> {
        let node = self.store.leader(world).or_else(|| {
            self.store
                .nodes
                .iter()
                .copied()
                .find(|&n| !world.is_crashed(n))
        });
        node.and_then(|n| world.actor_ref::<StoreNode>(n))
            .map(|s| {
                s.mvcc()
                    .events_since(s.mvcc().compacted())
                    .unwrap_or_default()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::WorldConfig;

    #[test]
    fn full_stack_becomes_ready() {
        let mut world = World::new(WorldConfig::default(), 31);
        let cfg = ClusterConfig::default();
        let cluster = spawn_cluster(&mut world, &cfg);
        assert!(
            cluster.wait_ready(&mut world, SimTime(Duration::secs(3).as_nanos())),
            "stack did not become ready"
        );
        assert_eq!(cluster.apiservers.len(), 2);
        assert_eq!(cluster.kubelets.len(), 2);
    }

    #[test]
    fn seeding_and_ground_truth() {
        let mut world = World::new(WorldConfig::default(), 32);
        let cfg = ClusterConfig::default();
        let cluster = spawn_cluster(&mut world, &cfg);
        let deadline = SimTime(Duration::secs(5).as_nanos());
        assert!(cluster.wait_ready(&mut world, deadline));
        let rev = cluster
            .create_object(&mut world, &Object::node("node-1"), deadline)
            .expect("seed node");
        assert!(rev.0 >= 1);
        let s = cluster.ground_truth(&world);
        assert!(s.contains_key("nodes/node-1"));
        assert!(cluster.delete_key(&mut world, "nodes/node-1", deadline));
        let s = cluster.ground_truth(&world);
        assert!(!s.contains_key("nodes/node-1"));
        assert!(!cluster.ground_history(&world).is_empty());
    }
}
