//! The client-side cache: list+watch reflector and informer.
//!
//! This is the analog of Kubernetes' `client-go/tools/cache` — the "common
//! shared library [that] contains the caches for (H′, S′)" (§6.2, [10]).
//! An [`Informer`] lists a key space through an [`ApiClient`], then watches
//! from the list's revision, maintaining a local object store `S′` and a
//! frontier revision, and surfaces typed [`InformerEvent`]s to its owner.
//! When the watch resume point falls out of the apiserver's window it
//! re-lists — from whichever upstream the client currently prefers.

use std::collections::BTreeMap;

use ph_lint::summary::{ReadKind, ViewDecl};
use ph_sim::{Ctx, Duration, SimTime};
use ph_store::Revision;

use crate::api::{ApiError, ApiOk};
use crate::apiclient::{ApiClient, ApiCompletion};
use crate::objects::Object;

/// Informer tuning.
#[derive(Debug, Clone)]
pub struct InformerConfig {
    /// Key-space prefix to mirror (e.g. `"pods/"`).
    pub prefix: String,
    /// `true` lists with quorum reads (the Kubernetes-59848 fix); `false`
    /// lists from the apiserver cache (the default, and the bug).
    pub fresh_lists: bool,
    /// Periodically force a re-list even while the watch is healthy
    /// (heals interior gaps at the cost of load). `None` disables.
    pub resync_interval: Option<Duration>,
    /// `true` when the feed from the apiserver to this informer rides a
    /// finite-bandwidth link, so offered load alone (queueing delay, tail
    /// drops) can age the view without any injected fault. Purely a static
    /// declaration for the hazard checker — the link itself is configured
    /// on the [`ph_sim::net::Network`].
    pub congestible: bool,
}

impl InformerConfig {
    /// Cache-backed informer with no periodic resync (Kubernetes defaults).
    pub fn new(prefix: impl Into<String>) -> InformerConfig {
        InformerConfig {
            prefix: prefix.into(),
            fresh_lists: false,
            resync_interval: None,
            congestible: false,
        }
    }

    /// The static [`ViewDecl`] this informer realizes, for the hazard
    /// checker: informers always watch and always relist on a watch gap,
    /// but a relist jumps to a *snapshot* — skipped intermediate events are
    /// never replayed (`event_replay: false`), which is exactly the §4.2.3
    /// observability gap the volume-controller scenario exercises.
    pub fn view_decl(&self) -> ViewDecl {
        ViewDecl {
            resource: self.prefix.trim_end_matches('/').to_string(),
            list: if self.fresh_lists {
                ReadKind::Quorum
            } else {
                ReadKind::Cache
            },
            watch: true,
            relist_on_gap: true,
            periodic_resync: self.resync_interval.is_some(),
            event_replay: false,
            congestible: self.congestible,
        }
    }
}

/// A typed view-change notification delivered to the informer's owner.
#[derive(Debug, Clone)]
pub enum InformerEvent {
    /// A (re)list completed; the local store was replaced wholesale.
    Synced {
        /// Snapshot revision (the new frontier).
        revision: Revision,
    },
    /// An object appeared.
    Added(Object),
    /// An object changed.
    Updated {
        /// Previous local copy, if the informer had one.
        old: Option<Object>,
        /// New copy.
        new: Object,
    },
    /// An object vanished.
    Deleted {
        /// Its key.
        key: String,
        /// The last local copy, if any.
        last: Option<Object>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NeedList,
    Listing { req: u64 },
    Watching { watch: u64 },
}

/// The informer state machine. Owners drive it with
/// [`Informer::poll`] (from their tick) and [`Informer::on_completion`]
/// (for every [`ApiCompletion`] from the shared [`ApiClient`]).
#[derive(Debug)]
pub struct Informer {
    cfg: InformerConfig,
    store: BTreeMap<String, Object>,
    revision: Revision,
    phase: Phase,
    synced_once: bool,
    last_resync: SimTime,
}

impl Informer {
    /// Creates an idle informer; call [`Informer::poll`] to start it.
    pub fn new(cfg: InformerConfig) -> Informer {
        Informer {
            cfg,
            store: BTreeMap::new(),
            revision: Revision::ZERO,
            phase: Phase::NeedList,
            synced_once: false,
            last_resync: SimTime::ZERO,
        }
    }

    /// The watched prefix.
    pub fn prefix(&self) -> &str {
        &self.cfg.prefix
    }

    /// The local store `S′`, keyed by full object key.
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        self.store.values()
    }

    /// Number of locally known objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the local store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Local copy of one object by full key.
    pub fn get(&self, key: &str) -> Option<&Object> {
        self.store.get(key)
    }

    /// The view frontier `H′` has reached.
    pub fn revision(&self) -> Revision {
        self.revision
    }

    /// `true` after the first successful list.
    pub fn is_synced(&self) -> bool {
        self.synced_once
    }

    /// Drives the state machine: starts the initial/recovery list, and
    /// triggers periodic resyncs if configured. Call from the owner's tick.
    pub fn poll(&mut self, client: &mut ApiClient, ctx: &mut Ctx) {
        match self.phase {
            Phase::NeedList => {
                ctx.counter_inc("informer.relist");
                let req = client.list(self.cfg.prefix.clone(), self.cfg.fresh_lists, ctx);
                self.phase = Phase::Listing { req };
            }
            Phase::Watching { watch } => {
                if let Some(every) = self.cfg.resync_interval {
                    if ctx.now().since(self.last_resync) >= every {
                        client.cancel_watch(watch, ctx);
                        self.phase = Phase::NeedList;
                        self.last_resync = ctx.now();
                        ctx.counter_inc("informer.relist");
                        let req = client.list(self.cfg.prefix.clone(), self.cfg.fresh_lists, ctx);
                        self.phase = Phase::Listing { req };
                    }
                }
            }
            Phase::Listing { .. } => {}
        }
    }

    /// Offers a completion from the shared client; returns `true` if it
    /// belonged to this informer (events, if any, appended to `out`).
    pub fn on_completion(
        &mut self,
        c: &ApiCompletion,
        client: &mut ApiClient,
        ctx: &mut Ctx,
        out: &mut Vec<InformerEvent>,
    ) -> bool {
        match c {
            ApiCompletion::Done { req, result } => {
                let Phase::Listing { req: want } = self.phase else {
                    return false;
                };
                if *req != want {
                    return false;
                }
                match result {
                    Ok(ApiOk::List { items, revision }) => {
                        self.store.clear();
                        for (key, value, rv) in items {
                            if let Ok(mut obj) = Object::decode(value) {
                                obj.meta.resource_version = *rv;
                                self.store.insert(key.clone(), obj);
                            }
                        }
                        self.revision = *revision;
                        self.synced_once = true;
                        self.last_resync = ctx.now();
                        ctx.annotate("view.frontier", revision.0.to_string());
                        ctx.counter_inc("informer.synced");
                        ctx.gauge_set("informer.frontier", revision.0 as i64);
                        let watch = client.watch(self.cfg.prefix.clone(), *revision, ctx);
                        self.phase = Phase::Watching { watch };
                        out.push(InformerEvent::Synced {
                            revision: *revision,
                        });
                    }
                    Ok(_) | Err(ApiError::Unavailable) | Err(_) => {
                        // Retry from the top on the next poll.
                        self.phase = Phase::NeedList;
                    }
                }
                true
            }
            ApiCompletion::WatchEvents {
                watch,
                events,
                revision,
            } => {
                let Phase::Watching { watch: want } = self.phase else {
                    return false;
                };
                if *watch != want {
                    return false;
                }
                for e in events {
                    if !e.key.starts_with(&self.cfg.prefix) {
                        continue;
                    }
                    ctx.counter_inc("informer.watch_events");
                    match &e.value {
                        Some(bytes) => {
                            if let Ok(mut obj) = Object::decode(bytes) {
                                obj.meta.resource_version = e.revision;
                                let old = self.store.insert(e.key.clone(), obj.clone());
                                match old {
                                    None => out.push(InformerEvent::Added(obj)),
                                    Some(o) => out.push(InformerEvent::Updated {
                                        old: Some(o),
                                        new: obj,
                                    }),
                                }
                            }
                        }
                        None => {
                            let last = self.store.remove(&e.key);
                            out.push(InformerEvent::Deleted {
                                key: e.key.clone(),
                                last,
                            });
                        }
                    }
                }
                if *revision > self.revision {
                    self.revision = *revision;
                }
                ctx.annotate("view.frontier", self.revision.0.to_string());
                ctx.gauge_set("informer.frontier", self.revision.0 as i64);
                true
            }
            ApiCompletion::WatchTooOld { watch } => {
                let Phase::Watching { watch: want } = self.phase else {
                    return false;
                };
                if *watch != want {
                    return false;
                }
                // Gap: events between our resume point and the window are
                // unrecoverable; rebuild from a fresh list (§4.2.3).
                ctx.annotate("informer.too_old", self.revision.0.to_string());
                ctx.counter_inc("informer.too_old");
                self.phase = Phase::NeedList;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informer_starts_unsynced_and_empty() {
        let inf = Informer::new(InformerConfig::new("pods/"));
        assert!(!inf.is_synced());
        assert!(inf.is_empty());
        assert_eq!(inf.len(), 0);
        assert_eq!(inf.revision(), Revision::ZERO);
        assert_eq!(inf.prefix(), "pods/");
        assert!(inf.get("pods/p1").is_none());
    }

    #[test]
    fn config_defaults_match_kubernetes() {
        let cfg = InformerConfig::new("nodes/");
        assert!(!cfg.fresh_lists, "default lists come from the cache");
        assert!(
            cfg.resync_interval.is_none(),
            "no periodic relist by default"
        );
    }
}
