//! The kubelet: runs pods bound to its node.
//!
//! A kubelet mirrors the pod key space through an [`Informer`] fed by *one*
//! apiserver, and reconciles: start pods bound to this node, stop pods that
//! were unbound, migrated or deleted, and finalize gracefully-deleted pods.
//! Containers (`running`) survive kubelet crashes — only the kubelet's
//! *view* is volatile — so a restarted kubelet re-decides everything from
//! whatever its (possibly different, possibly stale) apiserver tells it.
//!
//! This is the component at the center of Kubernetes-59848 (§2, Figure 2):
//!
//! * **buggy** (default, `fixed = false`): lists are served from the
//!   apiserver's watch cache. A kubelet that restarts against a stale
//!   apiserver re-runs pods it already stopped — two nodes run the same
//!   pod, violating the unique-execution guarantee.
//! * **fixed** (`fixed = true`): lists are quorum reads (the fix adopted
//!   upstream: verify against etcd before acting).
//!
//! Start/stop decisions are advertised via `kubelet.pod_start` /
//! `kubelet.pod_stop` annotations, which the unique-execution oracle
//! consumes.

use std::collections::BTreeSet;

use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, TimerId};

use crate::apiclient::{ApiClient, ApiClientConfig};
use crate::informer::{Informer, InformerConfig, InformerEvent};
use crate::objects::{Body, Object, PodPhase};

/// Kubelet tuning.
#[derive(Debug, Clone)]
pub struct KubeletConfig {
    /// The node this kubelet manages.
    pub node: String,
    /// How to reach the apiservers (use [`crate::PickPolicy::ByInstance`]
    /// to get the restart-switches-apiserver behaviour of the 59848 setup).
    pub api: ApiClientConfig,
    /// Reconcile interval.
    pub sync_interval: Duration,
    /// Grace period between observing a pod's termination mark and
    /// finalizing (deleting) the pod object — Kubernetes'
    /// `terminationGracePeriodSeconds`.
    pub termination_grace: Duration,
    /// `true` = quorum-read lists (the upstream fix).
    pub fixed: bool,
    /// Renew a node heartbeat lease (`leases/{node}`) this often
    /// (`None` disables heartbeats; the node-lifecycle controller needs
    /// them on).
    pub lease_interval: Option<Duration>,
}

const TAG_TICK: u64 = 1;
const TAG_LEASE: u64 = 2;

/// The kubelet actor.
#[derive(Debug)]
pub struct Kubelet {
    cfg: KubeletConfig,
    /// Incarnation counter (drives apiserver selection under `ByInstance`).
    instance: u64,
    client: ApiClient,
    informer: Informer,
    /// Pods whose containers are currently running on this node. Survives
    /// kubelet restarts (the container runtime keeps them alive).
    running: BTreeSet<String>,
    /// Pods whose Running status this incarnation already reported.
    status_written: BTreeSet<String>,
    /// When each terminating pod was first observed terminating (volatile;
    /// a restarted kubelet re-waits the grace period).
    terminating_since: std::collections::BTreeMap<String, ph_sim::SimTime>,
}

impl Kubelet {
    /// Creates a kubelet (spawn it into a world).
    pub fn new(cfg: KubeletConfig) -> Kubelet {
        let client = ApiClient::new(cfg.api.clone(), 0);
        let informer = Informer::new(InformerConfig {
            prefix: "pods/".into(),
            fresh_lists: cfg.fixed,
            resync_interval: None,
            congestible: false,
        });
        Kubelet {
            cfg,
            instance: 0,
            client,
            informer,
            running: BTreeSet::new(),
            status_written: BTreeSet::new(),
            terminating_since: std::collections::BTreeMap::new(),
        }
    }

    /// The static access protocol a kubelet built from `cfg` follows, for
    /// the partial-history hazard checker.
    ///
    /// Stopping a container is gated on the pod's *absence* from the view
    /// (bound elsewhere / deleted); finalizing on its terminating mark,
    /// which is persistent object state visible in any snapshot — so both
    /// are snapshot gates, unfenced (the kubelet fires unconditional
    /// deletes). The buggy kubelet lists from cache and, under
    /// `ByInstance`, relists from a different apiserver after a restart —
    /// the §4.2.2 recipe the Kubernetes-59848 scenario replays.
    pub fn access_summary(cfg: &KubeletConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath};
        let pods = InformerConfig {
            prefix: "pods/".into(),
            fresh_lists: cfg.fixed,
            resync_interval: None,
            congestible: false,
        };
        AccessSummary {
            component: format!("kubelet-{}", cfg.node),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![pods.view_decl()],
            actions: vec![
                ActionDecl {
                    name: "start-pod".into(),
                    destructive: false,
                    paths: vec![GatePath::new(
                        "bound-here",
                        vec![Gate::CachePresence("pods".into())],
                    )],
                },
                ActionDecl {
                    name: "stop-pod".into(),
                    destructive: true,
                    paths: vec![GatePath::new(
                        "unbound-or-deleted",
                        vec![Gate::CacheAbsence("pods".into())],
                    )],
                },
                ActionDecl {
                    name: "finalize-pod".into(),
                    destructive: true,
                    paths: vec![GatePath::new(
                        "terminating-marked",
                        vec![Gate::CachePresence("pods".into())],
                    )],
                },
            ],
        }
    }

    /// Pods currently running on this node.
    pub fn running_pods(&self) -> &BTreeSet<String> {
        &self.running
    }

    /// The apiserver this kubelet currently syncs with.
    pub fn upstream(&self) -> ActorId {
        self.client.upstream()
    }

    /// The node name.
    pub fn node(&self) -> &str {
        &self.cfg.node
    }

    /// The frontier `H′` of this kubelet's pod view (for lag sampling).
    pub fn view_revision(&self) -> ph_store::Revision {
        self.informer.revision()
    }

    fn sync(&mut self, ctx: &mut Ctx) {
        if !self.informer.is_synced() {
            return;
        }
        ctx.span_begin("reconcile", self.cfg.node.clone());
        self.sync_inner(ctx);
        ctx.span_end("reconcile");
    }

    fn sync_inner(&mut self, ctx: &mut Ctx) {
        // Desired = pods bound to me, live, not finished.
        let mut desired: BTreeSet<String> = BTreeSet::new();
        let mut to_finalize: Vec<Object> = Vec::new();
        for obj in self.informer.objects() {
            let Body::Pod { node, phase, .. } = &obj.body else {
                continue;
            };
            if node.as_deref() != Some(self.cfg.node.as_str()) {
                continue;
            }
            if obj.is_terminating() {
                to_finalize.push(obj.clone());
                continue;
            }
            if matches!(phase, PodPhase::Succeeded | PodPhase::Failed) {
                continue;
            }
            desired.insert(obj.meta.name.clone());
        }

        // Start missing pods.
        let to_start: Vec<String> = desired.difference(&self.running).cloned().collect();
        for name in to_start {
            self.running.insert(name.clone());
            ctx.annotate("kubelet.pod_start", name.clone());
            ctx.counter_inc("kubelet.pod_starts");
            self.report_running(&name, ctx);
        }
        // Stop pods that should no longer run here.
        let to_stop: Vec<String> = self.running.difference(&desired).cloned().collect();
        for name in to_stop {
            self.running.remove(&name);
            self.status_written.remove(&name);
            ctx.annotate("kubelet.pod_stop", name);
            ctx.counter_inc("kubelet.pod_stops");
        }
        // Finalize gracefully-deleted pods once their containers stopped and
        // the grace period has elapsed.
        let now = ctx.now();
        let seen: BTreeSet<String> = to_finalize.iter().map(|o| o.meta.name.clone()).collect();
        self.terminating_since.retain(|k, _| seen.contains(k));
        for obj in to_finalize {
            if self.running.contains(&obj.meta.name) {
                continue;
            }
            let since = *self
                .terminating_since
                .entry(obj.meta.name.clone())
                .or_insert(now);
            if now.since(since) >= self.cfg.termination_grace {
                self.client
                    .delete(obj.key().as_str().to_string(), None, ctx);
            }
        }
    }

    fn report_running(&mut self, name: &str, ctx: &mut Ctx) {
        if self.status_written.contains(name) {
            return;
        }
        let key = format!("pods/{name}");
        if let Some(obj) = self.informer.get(&key) {
            let mut updated = obj.clone();
            if let Body::Pod { phase, .. } = &mut updated.body {
                *phase = PodPhase::Running;
            }
            self.client.update(&updated, ctx);
            self.status_written.insert(name.to_string());
        }
    }
}

impl Actor for Kubelet {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
        if let Some(every) = self.cfg.lease_interval {
            ctx.set_timer(every, TAG_LEASE);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        // The view is volatile; the containers are not.
        self.instance += 1;
        self.client = ApiClient::new(self.cfg.api.clone(), self.instance);
        self.informer = Informer::new(InformerConfig {
            prefix: "pods/".into(),
            fresh_lists: self.cfg.fixed,
            resync_interval: None,
            congestible: false,
        });
        self.status_written.clear();
        self.terminating_since.clear();
        ctx.annotate("kubelet.restart", self.cfg.node.clone());
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            self.informer
                .on_completion(c, &mut self.client, ctx, &mut events);
        }
        if !events.is_empty() {
            self.sync(ctx);
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        match tag {
            TAG_TICK => {
                self.client.tick(ctx);
                self.informer.poll(&mut self.client, ctx);
                self.sync(ctx);
                ctx.set_timer(self.cfg.sync_interval, TAG_TICK);
            }
            TAG_LEASE => {
                if let Some(every) = self.cfg.lease_interval {
                    // Heartbeat: last-writer-wins renewal of the node lease.
                    let lease = Object::lease(self.cfg.node.clone(), ctx.now().nanos());
                    self.client.update(&lease, ctx);
                    ctx.set_timer(every, TAG_LEASE);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apiclient::PickPolicy;

    #[test]
    fn construction_and_accessors() {
        let mut api = ApiClientConfig::new(vec![ActorId(1), ActorId(2)]);
        api.pick = PickPolicy::ByInstance;
        let k = Kubelet::new(KubeletConfig {
            node: "n1".into(),
            api,
            sync_interval: Duration::millis(50),
            termination_grace: Duration::millis(200),
            fixed: false,
            lease_interval: None,
        });
        assert_eq!(k.node(), "n1");
        assert!(k.running_pods().is_empty());
        assert_eq!(k.upstream(), ActorId(1), "instance 0 → first apiserver");
    }
}
