//! Slab/struct-of-arrays storage backing the apiserver watch cache.
//!
//! At mega-cluster scale the watch cache dominates the apiserver's cost:
//! a `BTreeMap<String, (Value, Revision)>` pays a heap `String` per key,
//! pointer-chasing comparisons on every feed event, and scattered
//! `(Value, Revision)` tuples. The [`ObjectSlab`] replaces that with an
//! interned-key slab: each key is interned once ([`Sym`] = dense `u32`),
//! values and revisions live in parallel vectors indexed by the sym id
//! (struct-of-arrays), and a sorted side index of live keys preserves the
//! lexical prefix scans lists need. Feed-path updates are an intern (O(1)
//! amortized, allocation-free after first sight of a key) plus two vector
//! stores.
//!
//! [`ShardedCache`] splits the key space across several slabs by key hash.
//! Sharding is *purely internal*: every observable — get results, list
//! order (a k-way merge of the per-shard sorted indexes), lengths — is a
//! pure function of the key/value content and never of the shard count, so
//! a run at `shards = 8` is byte-identical to the same run at `shards = 1`.
//! The property test in this module and the scenario-level equivalence
//! suite both pin that down.
//!
//! [`WindowRing`] is the rolling watch-event window as a fixed-capacity
//! ring: push-with-evict is O(1) with no reallocation after warm-up, and
//! eviction order (oldest first) matches the `VecDeque` it replaces
//! exactly, so window floors and `TooOldResourceVersion` refusals are
//! unchanged.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::rc::Rc;

use ph_sim::intern::fnv1a;
use ph_sim::{Interner, Name, Sym};
use ph_store::{Revision, Value};

use crate::api::ObjEvent;

/// An interned-key, struct-of-arrays object store with a sorted live-key
/// index for lexical prefix scans.
#[derive(Debug, Clone, Default)]
pub struct ObjectSlab {
    /// Key interner: assigns each distinct key a dense [`Sym`] id.
    keys: Interner,
    /// Object bytes, indexed by sym id (`None` = not currently live).
    values: Vec<Option<Value>>,
    /// Last-modification revision, indexed by sym id.
    revs: Vec<Revision>,
    /// Sorted index of live keys (the lexical iteration order lists need).
    index: BTreeMap<Name, Sym>,
    /// Sum of live value lengths, maintained incrementally.
    value_bytes: usize,
}

impl ObjectSlab {
    /// An empty slab.
    pub fn new() -> ObjectSlab {
        ObjectSlab::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no object is live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Inserts or overwrites `key`.
    pub fn insert(&mut self, key: &str, value: Value, rev: Revision) {
        let sym = self.keys.intern(key);
        let i = sym.id() as usize;
        if i >= self.values.len() {
            self.values.resize(i + 1, None);
            self.revs.resize(i + 1, Revision::ZERO);
        }
        match &mut self.values[i] {
            Some(old) => {
                self.value_bytes -= old.len();
                self.value_bytes += value.len();
                *old = value;
            }
            slot => {
                self.value_bytes += value.len();
                *slot = Some(value);
                self.index.insert(self.keys.name(sym).clone(), sym);
            }
        }
        self.revs[i] = rev;
    }

    /// Removes `key`; `true` if it was live.
    pub fn remove(&mut self, key: &str) -> bool {
        let Some(sym) = self.keys.lookup(key) else {
            return false;
        };
        let i = sym.id() as usize;
        match self.values[i].take() {
            Some(old) => {
                self.value_bytes -= old.len();
                self.index.remove(key);
                true
            }
            None => false,
        }
    }

    /// The live value and revision of `key`.
    pub fn get(&self, key: &str) -> Option<(&Value, Revision)> {
        let sym = self.keys.lookup(key)?;
        let i = sym.id() as usize;
        self.values[i].as_ref().map(|v| (v, self.revs[i]))
    }

    /// Drops every live object. The key interner is retained: a cache
    /// rebuild over the same object space re-interns into the same slots
    /// without reallocating.
    pub fn clear(&mut self) {
        for v in &mut self.values {
            *v = None;
        }
        self.index.clear();
        self.value_bytes = 0;
    }

    /// Live objects whose key starts with `prefix`, in lexical key order.
    pub fn range_prefix<'a>(&'a self, prefix: &'a str) -> SlabRange<'a> {
        SlabRange {
            inner: self
                .index
                .range::<str, _>((Bound::Included(prefix), Bound::Unbounded)),
            slab: self,
            pfx: prefix,
            done: false,
        }
    }

    /// An allocation-footprint proxy for the slab, in bytes: live value
    /// payloads plus the struct-of-arrays backing capacity and the key
    /// interner's name table. Deterministic (capacities grow by doubling),
    /// so bench runs can report per-object memory without touching the
    /// allocator.
    pub fn approx_bytes(&self) -> usize {
        let soa = self.values.capacity() * std::mem::size_of::<Option<Value>>()
            + self.revs.capacity() * std::mem::size_of::<Revision>();
        // Interned names: one Rc<str> header + the bytes, counted once.
        let names: usize = self.keys.iter().map(|(_, s)| s.len() + 16).sum();
        // Sorted index entries: a Name handle + a Sym per live key.
        let index = self.index.len() * (std::mem::size_of::<Name>() + std::mem::size_of::<Sym>());
        self.value_bytes + soa + names + index
    }
}

/// Iterator over one slab's live objects under a prefix (lexical order).
#[derive(Debug)]
pub struct SlabRange<'a> {
    inner: std::collections::btree_map::Range<'a, Name, Sym>,
    slab: &'a ObjectSlab,
    pfx: &'a str,
    done: bool,
}

impl<'a> Iterator for SlabRange<'a> {
    type Item = (&'a Name, &'a Value, Revision);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let (name, &sym) = self.inner.next()?;
        if !name.as_str().starts_with(self.pfx) {
            self.done = true;
            return None;
        }
        let i = sym.id() as usize;
        let value = self.slab.values[i].as_ref().expect("indexed keys are live");
        Some((name, value, self.slab.revs[i]))
    }
}

/// A watch cache split across several [`ObjectSlab`]s by key hash.
///
/// The shard of a key is `fnv1a(key) % shards` — seed-independent and
/// stable across runs. All read paths merge the per-shard sorted indexes
/// back into one lexical order, so the shard count is observationally
/// invisible (the determinism argument DESIGN.md §9 spells out).
#[derive(Debug, Clone)]
pub struct ShardedCache {
    shards: Vec<ObjectSlab>,
}

impl ShardedCache {
    /// A cache over `shards` slabs (0 is treated as 1).
    pub fn new(shards: usize) -> ShardedCache {
        ShardedCache {
            shards: (0..shards.max(1)).map(|_| ObjectSlab::new()).collect(),
        }
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &str) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (fnv1a(key) % self.shards.len() as u64) as usize
        }
    }

    /// Total live objects across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(ObjectSlab::len).sum()
    }

    /// `true` when no shard holds a live object.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ObjectSlab::is_empty)
    }

    /// Inserts or overwrites `key` in its shard.
    pub fn insert(&mut self, key: &str, value: Value, rev: Revision) {
        let s = self.shard_of(key);
        self.shards[s].insert(key, value, rev);
    }

    /// Removes `key` from its shard; `true` if it was live.
    pub fn remove(&mut self, key: &str) -> bool {
        let s = self.shard_of(key);
        self.shards[s].remove(key)
    }

    /// The live value and revision of `key`.
    pub fn get(&self, key: &str) -> Option<(&Value, Revision)> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Clears every shard (the interners persist, as in
    /// [`ObjectSlab::clear`]).
    pub fn clear(&mut self) {
        for s in &mut self.shards {
            s.clear();
        }
    }

    /// Allocation-footprint proxy summed across shards.
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(ObjectSlab::approx_bytes).sum()
    }

    /// Live objects under `prefix` across all shards, merged back into
    /// lexical key order (identical to a single-slab scan).
    pub fn range_prefix<'a>(&'a self, prefix: &'a str) -> MergedRange<'a> {
        MergedRange {
            arms: self
                .shards
                .iter()
                .map(|s| s.range_prefix(prefix).peekable())
                .collect(),
        }
    }
}

/// K-way merge over the per-shard sorted prefix ranges.
#[derive(Debug)]
pub struct MergedRange<'a> {
    arms: Vec<std::iter::Peekable<SlabRange<'a>>>,
}

impl<'a> Iterator for MergedRange<'a> {
    type Item = (&'a Name, &'a Value, Revision);

    fn next(&mut self) -> Option<Self::Item> {
        // Shard count is tiny (≤ 16); a linear min scan beats a heap. The
        // peeked name is copied out with its full `'a` lifetime, so the
        // final `next()` call below doesn't conflict with the scan borrows.
        // Keys are disjoint across shards, so no tie-break is needed.
        let mut best: Option<(usize, &'a Name)> = None;
        for (i, arm) in self.arms.iter_mut().enumerate() {
            if let Some(&(name, _, _)) = arm.peek() {
                if best.map_or(true, |(_, b)| *name < *b) {
                    best = Some((i, name));
                }
            }
        }
        self.arms[best?.0].next()
    }
}

/// The rolling watch-event window as a fixed-capacity ring.
#[derive(Debug, Clone, Default)]
pub struct WindowRing {
    buf: Vec<Rc<ObjEvent>>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
}

impl WindowRing {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> WindowRing {
        WindowRing {
            buf: Vec::new(),
            cap,
            head: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` while nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends `ev`, returning the evicted oldest event when full. With
    /// capacity 0 the event is "evicted" immediately — the window holds
    /// nothing, exactly like the grow-then-trim deque it replaces.
    pub fn push(&mut self, ev: Rc<ObjEvent>) -> Option<Rc<ObjEvent>> {
        if self.cap == 0 {
            return Some(ev);
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            return None;
        }
        let evicted = std::mem::replace(&mut self.buf[self.head], ev);
        self.head = (self.head + 1) % self.cap;
        Some(evicted)
    }

    /// Drops all buffered events (capacity is retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Buffered events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Rc<ObjEvent>> {
        let n = self.buf.len();
        (0..n).map(move |i| &self.buf[(self.head + i) % n.max(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn slab_insert_get_remove_roundtrip() {
        let mut s = ObjectSlab::new();
        assert!(s.is_empty());
        s.insert("pods/a", val("1"), Revision(1));
        s.insert("pods/b", val("22"), Revision(2));
        s.insert("pods/a", val("333"), Revision(3));
        assert_eq!(s.len(), 2);
        let (v, rv) = s.get("pods/a").expect("live");
        assert_eq!(v.as_slice(), b"333");
        assert_eq!(rv, Revision(3));
        assert!(s.remove("pods/a"));
        assert!(!s.remove("pods/a"));
        assert!(s.get("pods/a").is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slab_range_prefix_is_lexical_and_bounded() {
        let mut s = ObjectSlab::new();
        for k in ["pods/c", "nodes/a", "pods/a", "pods/b", "pvcs/x"] {
            s.insert(k, val(k), Revision(1));
        }
        let keys: Vec<&str> = s
            .range_prefix("pods/")
            .map(|(n, _, _)| n.as_str())
            .collect();
        assert_eq!(keys, vec!["pods/a", "pods/b", "pods/c"]);
        assert_eq!(s.range_prefix("zz").count(), 0);
        assert_eq!(s.range_prefix("").count(), 5);
    }

    #[test]
    fn slab_clear_keeps_interner_slots_stable() {
        let mut s = ObjectSlab::new();
        s.insert("a", val("x"), Revision(1));
        let bytes_before = s.approx_bytes();
        s.clear();
        assert!(s.is_empty());
        assert!(s.get("a").is_none());
        s.insert("a", val("x"), Revision(2));
        assert_eq!(s.get("a").map(|(_, rv)| rv), Some(Revision(2)));
        // Rebuild over the same keys costs no new interner growth.
        assert_eq!(s.approx_bytes(), bytes_before);
    }

    /// Model test: a sharded cache behaves exactly like one `BTreeMap`,
    /// for every shard count, on a deterministic random op stream.
    #[test]
    fn sharded_cache_matches_btreemap_model() {
        use ph_sim::SimRng;
        for shards in [1usize, 2, 3, 8] {
            let mut rng = SimRng::from_seed(0x51AB + shards as u64);
            let mut cache = ShardedCache::new(shards);
            let mut model: BTreeMap<String, (Value, Revision)> = BTreeMap::new();
            for step in 0..2_000u64 {
                let kind = ["pods/", "nodes/", "pvcs/"][rng.below(3) as usize];
                let key = format!("{kind}obj-{}", rng.below(200));
                if rng.below(4) == 0 {
                    assert_eq!(cache.remove(&key), model.remove(&key).is_some());
                } else {
                    let v = val(&format!("v{step}"));
                    cache.insert(&key, v.clone(), Revision(step));
                    model.insert(key, (v, Revision(step)));
                }
            }
            assert_eq!(cache.len(), model.len());
            for (k, (v, rv)) in &model {
                let (cv, crv) = cache.get(k).expect("model key live");
                assert_eq!(cv.as_slice(), v.as_slice());
                assert_eq!(crv, *rv);
            }
            for prefix in ["", "pods/", "nodes/", "pvcs/", "pods/obj-1"] {
                let got: Vec<(String, Revision)> = cache
                    .range_prefix(prefix)
                    .map(|(n, _, rv)| (n.as_str().to_string(), rv))
                    .collect();
                let want: Vec<(String, Revision)> = model
                    .range(prefix.to_string()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, (_, rv))| (k.clone(), *rv))
                    .collect();
                assert_eq!(got, want, "shards={shards} prefix={prefix:?}");
            }
        }
    }

    /// The merged scan is byte-for-byte independent of the shard count.
    #[test]
    fn shard_count_is_observationally_invisible() {
        let build = |shards: usize| {
            let mut c = ShardedCache::new(shards);
            for i in 0..500 {
                c.insert(&format!("pods/p-{i:04}"), val(&format!("{i}")), Revision(i));
            }
            for i in (0..500).step_by(3) {
                c.remove(&format!("pods/p-{i:04}"));
            }
            c
        };
        let reference: Vec<(String, Revision)> = build(1)
            .range_prefix("pods/")
            .map(|(n, _, rv)| (n.as_str().to_string(), rv))
            .collect();
        for shards in [2usize, 4, 8] {
            let got: Vec<(String, Revision)> = build(shards)
                .range_prefix("pods/")
                .map(|(n, _, rv)| (n.as_str().to_string(), rv))
                .collect();
            assert_eq!(got, reference, "shards={shards}");
        }
    }

    fn ev(rev: u64) -> Rc<ObjEvent> {
        Rc::new(ObjEvent {
            key: format!("pods/{rev}"),
            revision: Revision(rev),
            value: None,
        })
    }

    #[test]
    fn window_ring_evicts_oldest_first() {
        let mut w = WindowRing::new(3);
        assert!(w.push(ev(1)).is_none());
        assert!(w.push(ev(2)).is_none());
        assert!(w.push(ev(3)).is_none());
        assert_eq!(w.push(ev(4)).expect("full").revision, Revision(1));
        assert_eq!(w.push(ev(5)).expect("full").revision, Revision(2));
        let revs: Vec<u64> = w.iter().map(|e| e.revision.0).collect();
        assert_eq!(revs, vec![3, 4, 5]);
        w.clear();
        assert!(w.is_empty());
        assert!(w.push(ev(6)).is_none());
        assert_eq!(w.iter().count(), 1);
    }

    #[test]
    fn window_ring_capacity_zero_holds_nothing() {
        let mut w = WindowRing::new(0);
        assert_eq!(
            w.push(ev(9)).expect("immediate evict").revision,
            Revision(9)
        );
        assert!(w.is_empty());
        assert_eq!(w.iter().count(), 0);
    }

    /// The ring replays the exact eviction sequence of the deque it
    /// replaced: push a batch, trim to capacity, oldest dropped first.
    #[test]
    fn window_ring_matches_vecdeque_model() {
        use ph_sim::SimRng;
        use std::collections::VecDeque;
        let mut rng = SimRng::from_seed(0x217);
        for cap in [1usize, 2, 7, 100] {
            let mut ring = WindowRing::new(cap);
            let mut deque: VecDeque<Rc<ObjEvent>> = VecDeque::new();
            let mut ring_dropped = Vec::new();
            let mut deque_dropped = Vec::new();
            for rev in 0..500u64 {
                // Batches of 1–4 events, like multi-event feed deliveries.
                for b in 0..(1 + rng.below(4)) {
                    let e = ev(rev * 8 + b);
                    if let Some(d) = ring.push(Rc::clone(&e)) {
                        ring_dropped.push(d.revision);
                    }
                    deque.push_back(e);
                }
                while deque.len() > cap {
                    deque_dropped.push(deque.pop_front().expect("non-empty").revision);
                }
            }
            assert_eq!(ring_dropped, deque_dropped, "cap={cap}");
            let a: Vec<u64> = ring.iter().map(|e| e.revision.0).collect();
            let b: Vec<u64> = deque.iter().map(|e| e.revision.0).collect();
            assert_eq!(a, b, "cap={cap}");
        }
    }
}
