//! The typed cluster object model and its store codec.
//!
//! Objects are the units of the cluster state `S`: pods, nodes, persistent
//! volume claims, replica sets and Cassandra datacenters. They are stored
//! under `"{plural}/{name}"` keys; the store's `mod_revision` becomes the
//! object's `resourceVersion` on read, and writes carry it back as an
//! optimistic-concurrency precondition — exactly Kubernetes' scheme.
//!
//! The codec is a deliberately simple line-oriented text format (one
//! `field=value` per line); both encoder and decoder live here and are
//! round-trip tested, avoiding any serialization dependency.

use ph_store::{Key, KeyValue, Revision, Value};

/// The kinds of cluster objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectKind {
    /// A schedulable workload unit.
    Pod,
    /// A worker machine.
    Node,
    /// A persistent volume claim (storage attached to a pod).
    Pvc,
    /// A replica-count controller resource.
    ReplicaSet,
    /// A Cassandra datacenter custom resource (operator-managed).
    CassandraDatacenter,
    /// A node heartbeat lease (coordination.k8s.io-style): the kubelet
    /// renews it; the node-lifecycle controller judges node health by its
    /// age.
    Lease,
}

impl ObjectKind {
    /// The key-space prefix for this kind (with trailing slash).
    pub fn prefix(self) -> &'static str {
        match self {
            ObjectKind::Pod => "pods/",
            ObjectKind::Node => "nodes/",
            ObjectKind::Pvc => "pvcs/",
            ObjectKind::ReplicaSet => "replicasets/",
            ObjectKind::CassandraDatacenter => "cassdcs/",
            ObjectKind::Lease => "leases/",
        }
    }

    /// The store key for an object of this kind.
    pub fn key(self, name: &str) -> Key {
        Key::new(format!("{}{}", self.prefix(), name))
    }

    fn tag(self) -> &'static str {
        match self {
            ObjectKind::Pod => "Pod",
            ObjectKind::Node => "Node",
            ObjectKind::Pvc => "Pvc",
            ObjectKind::ReplicaSet => "ReplicaSet",
            ObjectKind::CassandraDatacenter => "CassandraDatacenter",
            ObjectKind::Lease => "Lease",
        }
    }

    fn from_tag(s: &str) -> Option<ObjectKind> {
        Some(match s {
            "Pod" => ObjectKind::Pod,
            "Node" => ObjectKind::Node,
            "Pvc" => ObjectKind::Pvc,
            "ReplicaSet" => ObjectKind::ReplicaSet,
            "CassandraDatacenter" => ObjectKind::CassandraDatacenter,
            "Lease" => ObjectKind::Lease,
            _ => return None,
        })
    }

    /// The kind implied by a store key, if it lies in a known key space.
    pub fn of_key(key: &str) -> Option<ObjectKind> {
        [
            ObjectKind::Pod,
            ObjectKind::Node,
            ObjectKind::Pvc,
            ObjectKind::ReplicaSet,
            ObjectKind::CassandraDatacenter,
            ObjectKind::Lease,
        ]
        .into_iter()
        .find(|k| key.starts_with(k.prefix()))
    }
}

/// A pod's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PodPhase {
    /// Created, not yet bound to a node.
    #[default]
    Pending,
    /// Running on its bound node.
    Running,
    /// Finished successfully.
    Succeeded,
    /// Finished with failure.
    Failed,
}

impl PodPhase {
    fn tag(self) -> &'static str {
        match self {
            PodPhase::Pending => "Pending",
            PodPhase::Running => "Running",
            PodPhase::Succeeded => "Succeeded",
            PodPhase::Failed => "Failed",
        }
    }
    fn from_tag(s: &str) -> Option<PodPhase> {
        Some(match s {
            "Pending" => PodPhase::Pending,
            "Running" => PodPhase::Running,
            "Succeeded" => PodPhase::Succeeded,
            "Failed" => PodPhase::Failed,
            _ => return None,
        })
    }
}

/// Metadata common to all objects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectMeta {
    /// Object name (unique within its kind).
    pub name: String,
    /// The store revision of the last write to this object; 0 when the
    /// object has not been read back from the store yet. Filled by
    /// [`Object::from_kv`], used as a CAS precondition on updates.
    pub resource_version: Revision,
    /// Graceful-deletion mark, in logical nanoseconds ("deletionTimestamp");
    /// `None` for live objects. Set by the apiserver's `MarkDeleted` verb.
    pub deletion_timestamp: Option<u64>,
    /// Owning object's name (e.g. a PVC's pod, a pod's replica set), if any.
    pub owner: Option<String>,
}

/// Kind-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Pod spec/status.
    Pod {
        /// Node the pod is bound to (`None` = unscheduled).
        node: Option<String>,
        /// Lifecycle phase.
        phase: PodPhase,
        /// PVC attached to this pod, if any.
        pvc: Option<String>,
    },
    /// Node status.
    Node {
        /// Whether the node is accepting pods.
        ready: bool,
    },
    /// Persistent volume claim.
    Pvc {
        /// Whether storage is currently bound.
        bound: bool,
    },
    /// Replica set spec.
    ReplicaSet {
        /// Desired replica count.
        replicas: u32,
    },
    /// Cassandra datacenter spec.
    CassandraDatacenter {
        /// Desired Cassandra node (pod) count.
        desired: u32,
    },
    /// Node heartbeat lease.
    Lease {
        /// The renewing node.
        holder: String,
        /// Logical time of the last renewal, in nanoseconds.
        renewed_at_ns: u64,
    },
}

impl Body {
    /// The kind this body belongs to.
    pub fn kind(&self) -> ObjectKind {
        match self {
            Body::Pod { .. } => ObjectKind::Pod,
            Body::Node { .. } => ObjectKind::Node,
            Body::Pvc { .. } => ObjectKind::Pvc,
            Body::ReplicaSet { .. } => ObjectKind::ReplicaSet,
            Body::CassandraDatacenter { .. } => ObjectKind::CassandraDatacenter,
            Body::Lease { .. } => ObjectKind::Lease,
        }
    }
}

/// A cluster object: metadata plus kind-specific body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Common metadata.
    pub meta: ObjectMeta,
    /// Kind-specific payload.
    pub body: Body,
}

/// Codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "object codec: {}", self.0)
    }
}
impl std::error::Error for CodecError {}

impl Object {
    /// Creates a fresh (never-stored) object.
    pub fn new(name: impl Into<String>, body: Body) -> Object {
        Object {
            meta: ObjectMeta {
                name: name.into(),
                ..ObjectMeta::default()
            },
            body,
        }
    }

    /// A pending pod, optionally pre-bound and with an attached PVC.
    pub fn pod(name: impl Into<String>, node: Option<String>, pvc: Option<String>) -> Object {
        Object::new(
            name,
            Body::Pod {
                node,
                phase: PodPhase::Pending,
                pvc,
            },
        )
    }

    /// A ready node.
    pub fn node(name: impl Into<String>) -> Object {
        Object::new(name, Body::Node { ready: true })
    }

    /// A node heartbeat lease renewed at `renewed_at_ns`.
    pub fn lease(node: impl Into<String>, renewed_at_ns: u64) -> Object {
        let node = node.into();
        Object::new(
            node.clone(),
            Body::Lease {
                holder: node,
                renewed_at_ns,
            },
        )
    }

    /// A bound PVC owned by `owner` (a pod name).
    pub fn pvc(name: impl Into<String>, owner: impl Into<String>) -> Object {
        let mut o = Object::new(name, Body::Pvc { bound: true });
        o.meta.owner = Some(owner.into());
        o
    }

    /// The object's kind.
    pub fn kind(&self) -> ObjectKind {
        self.body.kind()
    }

    /// The object's store key.
    pub fn key(&self) -> Key {
        self.kind().key(&self.meta.name)
    }

    /// `true` once the object has been marked for graceful deletion.
    pub fn is_terminating(&self) -> bool {
        self.meta.deletion_timestamp.is_some()
    }

    /// Pod helper: the bound node, if this is a bound pod.
    pub fn pod_node(&self) -> Option<&str> {
        match &self.body {
            Body::Pod { node, .. } => node.as_deref(),
            _ => None,
        }
    }

    /// Pod helper: the attached PVC name.
    pub fn pod_pvc(&self) -> Option<&str> {
        match &self.body {
            Body::Pod { pvc, .. } => pvc.as_deref(),
            _ => None,
        }
    }

    /// Encodes the object for storage (resource version is *not* encoded —
    /// the store's `mod_revision` is the source of truth).
    pub fn encode(&self) -> Value {
        let mut s = String::new();
        s.push_str("kind=");
        s.push_str(self.kind().tag());
        s.push('\n');
        s.push_str("name=");
        s.push_str(&self.meta.name);
        s.push('\n');
        if let Some(dt) = self.meta.deletion_timestamp {
            s.push_str(&format!("deletion_timestamp={dt}\n"));
        }
        if let Some(o) = &self.meta.owner {
            s.push_str(&format!("owner={o}\n"));
        }
        match &self.body {
            Body::Pod { node, phase, pvc } => {
                if let Some(n) = node {
                    s.push_str(&format!("node={n}\n"));
                }
                s.push_str(&format!("phase={}\n", phase.tag()));
                if let Some(v) = pvc {
                    s.push_str(&format!("pvc={v}\n"));
                }
            }
            Body::Node { ready } => s.push_str(&format!("ready={ready}\n")),
            Body::Pvc { bound } => s.push_str(&format!("bound={bound}\n")),
            Body::ReplicaSet { replicas } => s.push_str(&format!("replicas={replicas}\n")),
            Body::CassandraDatacenter { desired } => s.push_str(&format!("desired={desired}\n")),
            Body::Lease {
                holder,
                renewed_at_ns,
            } => {
                s.push_str(&format!("holder={holder}\n"));
                s.push_str(&format!("renewed_at={renewed_at_ns}\n"));
            }
        }
        Value::copy_from_slice(s.as_bytes())
    }

    /// Decodes an object from stored bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed input.
    pub fn decode(value: &Value) -> Result<Object, CodecError> {
        let text = std::str::from_utf8(value).map_err(|e| CodecError(e.to_string()))?;
        let mut fields = std::collections::BTreeMap::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| CodecError(format!("bad line {line:?}")))?;
            fields.insert(k, v);
        }
        let kind = fields
            .get("kind")
            .and_then(|t| ObjectKind::from_tag(t))
            .ok_or_else(|| CodecError("missing/unknown kind".into()))?;
        let name = fields
            .get("name")
            .ok_or_else(|| CodecError("missing name".into()))?
            .to_string();
        let deletion_timestamp = match fields.get("deletion_timestamp") {
            Some(v) => Some(v.parse().map_err(|_| CodecError("bad timestamp".into()))?),
            None => None,
        };
        let owner = fields.get("owner").map(|s| s.to_string());
        let parse_bool = |k: &str| -> Result<bool, CodecError> {
            fields
                .get(k)
                .ok_or_else(|| CodecError(format!("missing {k}")))?
                .parse()
                .map_err(|_| CodecError(format!("bad bool {k}")))
        };
        let parse_u32 = |k: &str| -> Result<u32, CodecError> {
            fields
                .get(k)
                .ok_or_else(|| CodecError(format!("missing {k}")))?
                .parse()
                .map_err(|_| CodecError(format!("bad u32 {k}")))
        };
        let body = match kind {
            ObjectKind::Pod => Body::Pod {
                node: fields.get("node").map(|s| s.to_string()),
                phase: fields
                    .get("phase")
                    .and_then(|t| PodPhase::from_tag(t))
                    .ok_or_else(|| CodecError("missing/unknown phase".into()))?,
                pvc: fields.get("pvc").map(|s| s.to_string()),
            },
            ObjectKind::Node => Body::Node {
                ready: parse_bool("ready")?,
            },
            ObjectKind::Pvc => Body::Pvc {
                bound: parse_bool("bound")?,
            },
            ObjectKind::ReplicaSet => Body::ReplicaSet {
                replicas: parse_u32("replicas")?,
            },
            ObjectKind::CassandraDatacenter => Body::CassandraDatacenter {
                desired: parse_u32("desired")?,
            },
            ObjectKind::Lease => Body::Lease {
                holder: fields
                    .get("holder")
                    .ok_or_else(|| CodecError("missing holder".into()))?
                    .to_string(),
                renewed_at_ns: fields
                    .get("renewed_at")
                    .ok_or_else(|| CodecError("missing renewed_at".into()))?
                    .parse()
                    .map_err(|_| CodecError("bad renewed_at".into()))?,
            },
        };
        Ok(Object {
            meta: ObjectMeta {
                name,
                resource_version: Revision::ZERO,
                deletion_timestamp,
                owner,
            },
            body,
        })
    }

    /// Decodes a stored [`KeyValue`], filling in the resource version from
    /// the store's `mod_revision`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed stored bytes.
    pub fn from_kv(kv: &KeyValue) -> Result<Object, CodecError> {
        let mut o = Object::decode(&kv.value)?;
        o.meta.resource_version = kv.mod_revision;
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(o: &Object) {
        let enc = o.encode();
        let dec = Object::decode(&enc).expect("decode");
        assert_eq!(&dec, o);
    }

    #[test]
    fn all_kinds_round_trip() {
        round_trip(&Object::pod("p1", Some("n1".into()), Some("v1".into())));
        round_trip(&Object::pod("p2", None, None));
        round_trip(&Object::node("n1"));
        round_trip(&Object::pvc("v1", "p1"));
        round_trip(&Object::new("rs1", Body::ReplicaSet { replicas: 3 }));
        round_trip(&Object::new(
            "dc1",
            Body::CassandraDatacenter { desired: 5 },
        ));
        round_trip(&Object::lease("node-1", 123_456_789));
    }

    #[test]
    fn deletion_timestamp_round_trips() {
        let mut o = Object::pod("p1", None, None);
        o.meta.deletion_timestamp = Some(123_456);
        round_trip(&o);
        assert!(o.is_terminating());
    }

    #[test]
    fn keys_follow_the_kind_layout() {
        let p = Object::pod("p1", None, None);
        assert_eq!(p.key(), Key::new("pods/p1"));
        assert_eq!(ObjectKind::of_key("pods/p1"), Some(ObjectKind::Pod));
        assert_eq!(ObjectKind::of_key("pvcs/x"), Some(ObjectKind::Pvc));
        assert_eq!(ObjectKind::of_key("garbage/x"), None);
    }

    #[test]
    fn from_kv_fills_resource_version() {
        let o = Object::node("n1");
        let kv = KeyValue {
            key: o.key(),
            value: o.encode(),
            create_revision: Revision(3),
            mod_revision: Revision(9),
            version: 2,
            lease: None,
        };
        let got = Object::from_kv(&kv).expect("decode");
        assert_eq!(got.meta.resource_version, Revision(9));
        assert_eq!(got.meta.name, "n1");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Object::decode(&Value::from_static(b"kind=Wat\nname=x\n")).is_err());
        assert!(Object::decode(&Value::from_static(b"name=x\n")).is_err());
        assert!(Object::decode(&Value::from_static(b"kind=Node\nname=x\nready=maybe\n")).is_err());
        assert!(Object::decode(&Value::from_static(b"kind=Node\nname=x\n")).is_err());
        assert!(Object::decode(&Value::from_static(b"noequals")).is_err());
        assert!(Object::decode(&Value::from_static(&[0xff, 0xfe])).is_err());
    }

    #[test]
    fn pod_helpers() {
        let p = Object::pod("p1", Some("n1".into()), Some("v1".into()));
        assert_eq!(p.pod_node(), Some("n1"));
        assert_eq!(p.pod_pvc(), Some("v1"));
        assert_eq!(Object::node("n").pod_node(), None);
        assert!(!p.is_terminating());
    }
}
