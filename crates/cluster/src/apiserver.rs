//! The apiserver actor.
//!
//! Each apiserver keeps a *watch cache*: a full copy of the object space fed
//! by a store watch, from which it serves gets, lists and component watches
//! ("the Kubernetes developers decided to cache system state at each
//! apiserver and serve watch requests directly from the cached S′ instead of
//! pounding etcd" — §4.1, [1]). Writes pass through to the store with
//! optimistic concurrency. A bounded rolling window of recent events backs
//! watch resumption; resuming below the window fails with
//! `TooOldResourceVersion` ([7], §4.2.3).
//!
//! Consequences faithfully reproduced:
//! * an apiserver cut off from the store keeps serving its stale cache;
//! * different apiservers can be at different frontiers — the raw material
//!   of Kubernetes-59848 (Figure 2);
//! * a restarted apiserver re-lists from the store and starts a fresh
//!   window (old resume points may now be too old).

use std::collections::BTreeMap;

use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, TimerId};
use std::rc::Rc;

use ph_store::kv::KvEvent;
use ph_store::msgs::{Expect, ReadLevel};
use ph_store::{Completion, OpError, OpResult, Revision, StoreClient, StoreClientConfig, Value};

use crate::api::{
    ApiError, ApiOk, ApiRequest, ApiResponse, ApiWatchCancelReq, ApiWatchCancelled, ApiWatchCreate,
    ApiWatchEvent, ApiWatchProgress, ObjEvent, Verb, WatchError,
};
use crate::objects::Object;
use crate::slab::{ShardedCache, WindowRing};

/// Apiserver tuning.
#[derive(Debug, Clone)]
pub struct ApiServerConfig {
    /// Store endpoints and affinity (which etcd member this apiserver talks
    /// to — give each apiserver a different affinity for realism).
    pub store: StoreClientConfig,
    /// Rolling watch-event window length, in events.
    pub window: usize,
    /// Client maintenance tick.
    pub tick: Duration,
    /// Idle-watcher progress interval.
    pub progress_interval: Duration,
    /// Service time per cache read served by this apiserver (models finite
    /// apiserver capacity; zero = infinite).
    pub read_service: Duration,
    /// Watch-cache shard count (key-hash partitioned). Purely an internal
    /// layout knob: every run is byte-identical across shard counts.
    pub shards: usize,
    /// Emit scale gauges (`apiserver.objects`, `apiserver.window_peak`).
    /// Off by default to keep existing scenario exports byte-identical.
    pub scale_telemetry: bool,
}

impl ApiServerConfig {
    /// Defaults for the given store config.
    pub fn new(store: StoreClientConfig) -> ApiServerConfig {
        ApiServerConfig {
            store,
            window: 100,
            tick: Duration::millis(20),
            progress_interval: Duration::millis(200),
            read_service: Duration::ZERO,
            shards: 1,
            scale_telemetry: false,
        }
    }
}

const TAG_TICK: u64 = 1;
const TAG_PROGRESS: u64 = 2;
/// Timer tags at or above this are deferred-reply slots.
const TAG_DEFER_BASE: u64 = 1 << 16;

#[derive(Debug)]
enum PendingApi {
    /// A fresh (quorum) get: answer with the single matching object.
    FreshGet { client: ActorId, req: u64 },
    /// A fresh (quorum) list.
    FreshList { client: ActorId, req: u64 },
    /// A write (create/update); `not_exists` flags creates for error mapping.
    Write {
        client: ActorId,
        req: u64,
        not_exists: bool,
    },
    /// A delete.
    Delete { client: ActorId, req: u64 },
    /// Step 1 of MarkDeleted: the read.
    MarkRead {
        client: ActorId,
        req: u64,
        key: String,
        attempts: u32,
    },
    /// Step 2 of MarkDeleted: the CAS write.
    MarkWrite {
        client: ActorId,
        req: u64,
        key: String,
        attempts: u32,
    },
    /// The bootstrap list that (re)builds the watch cache.
    BootstrapList,
}

/// The apiserver actor.
#[derive(Debug)]
pub struct ApiServer {
    cfg: ApiServerConfig,
    store: StoreClient,
    /// The watch cache: interned-key slab shards holding (bytes, resource
    /// version) per object. This is this apiserver's `S′`.
    cache: ShardedCache,
    /// The cache's frontier (last revision reflected).
    cache_rev: Revision,
    /// `true` once the bootstrap list has been applied.
    ready: bool,
    /// Rolling window of recent events (dense in revision).
    window: WindowRing,
    /// High-water mark of live cache objects (scale telemetry).
    objects_peak: usize,
    /// High-water mark of buffered window events (scale telemetry).
    window_peak: usize,
    /// Lowest resume point servable from the window (events ≤ floor are
    /// gone; a resume at exactly `floor` is fine).
    window_floor: Revision,
    /// Component watchers: (client, watch id) → (prefix, next stream seq).
    watchers: BTreeMap<(ActorId, u64), (String, u64)>,
    /// In-flight store requests.
    pending: BTreeMap<u64, PendingApi>,
    /// The store watch feeding the cache.
    feed_watch: Option<u64>,
    /// Capacity model: busy serving cache reads until this instant.
    busy_until: ph_sim::SimTime,
    /// When the cache frontier last advanced (staleness-at-read probe).
    cache_advanced_at: ph_sim::SimTime,
    /// Deferred cache-read replies, keyed by timer tag.
    deferred: BTreeMap<u64, (ActorId, ApiResponse)>,
    next_defer_tag: u64,
}

impl ApiServer {
    /// Creates an apiserver (spawn it into a world).
    pub fn new(cfg: ApiServerConfig) -> ApiServer {
        let store = StoreClient::new(cfg.store.clone());
        let cache = ShardedCache::new(cfg.shards);
        let window = WindowRing::new(cfg.window);
        ApiServer {
            cfg,
            store,
            cache,
            cache_rev: Revision::ZERO,
            ready: false,
            window,
            objects_peak: 0,
            window_peak: 0,
            window_floor: Revision::ZERO,
            watchers: BTreeMap::new(),
            pending: BTreeMap::new(),
            feed_watch: None,
            busy_until: ph_sim::SimTime::ZERO,
            cache_advanced_at: ph_sim::SimTime::ZERO,
            deferred: BTreeMap::new(),
            next_defer_tag: TAG_DEFER_BASE,
        }
    }

    /// The cache frontier (diagnostics / oracles).
    pub fn cache_revision(&self) -> Revision {
        self.cache_rev
    }

    /// `true` once serving (bootstrap list applied).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// The static access protocol an apiserver follows, for the
    /// partial-history hazard checker. The apiserver is pure plumbing: its
    /// watch cache is a view over the store, but everything it *does* is
    /// non-destructive — serve reads (cache or quorum passthrough) and
    /// forward writes, the latter fenced by the store's revision
    /// preconditions. Hazards live in the components acting on its views.
    pub fn access_summary(_cfg: &ApiServerConfig) -> ph_lint::summary::AccessSummary {
        use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath, ReadKind, ViewDecl};
        AccessSummary {
            component: "apiserver".into(),
            upstream_switch: false,
            views: vec![ViewDecl {
                resource: "store".into(),
                list: ReadKind::Cache,
                watch: true,
                relist_on_gap: true,
                periodic_resync: false,
                event_replay: false,
                congestible: false,
            }],
            actions: vec![
                ActionDecl {
                    name: "serve-cache-read".into(),
                    destructive: false,
                    paths: vec![GatePath::new(
                        "watch-cache",
                        vec![Gate::CachePresence("store".into())],
                    )],
                },
                ActionDecl {
                    name: "serve-quorum-read".into(),
                    destructive: false,
                    paths: vec![GatePath::new(
                        "passthrough",
                        vec![Gate::FreshConfirm("store".into())],
                    )],
                },
                ActionDecl {
                    name: "forward-write".into(),
                    destructive: false,
                    paths: vec![GatePath::new(
                        "revision-fenced",
                        vec![Gate::Fence("store".into())],
                    )],
                },
            ],
        }
    }

    /// Number of objects in the watch cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cached bytes+revision of one key (this apiserver's view of it).
    pub fn cached(&self, key: &str) -> Option<(&Value, Revision)> {
        self.cache.get(key)
    }

    /// Approximate bytes held by the watch cache (slab payloads + backing
    /// arrays + key table): the deterministic peak-RSS proxy scale
    /// benchmarks report.
    pub fn cache_approx_bytes(&self) -> usize {
        self.cache.approx_bytes()
    }

    /// Sends a cache-read reply, charging the configured service time and
    /// recording how stale the cache was at the moment it was read.
    fn reply_cached(&mut self, to: ActorId, resp: ApiResponse, ctx: &mut Ctx) {
        ctx.counter_inc("apiserver.cache_reads");
        ctx.observe(
            "apiserver.read_staleness_ns",
            ctx.now().0.saturating_sub(self.cache_advanced_at.0),
        );
        ctx.gauge_set("apiserver.cache_revision", self.cache_rev.0 as i64);
        if self.cfg.read_service == Duration::ZERO {
            let bytes = resp.wire_bytes();
            ctx.send_sized(to, resp, bytes);
            return;
        }
        let now = ctx.now();
        let start = self.busy_until.max(now);
        self.busy_until = start + self.cfg.read_service;
        let tag = self.next_defer_tag;
        self.next_defer_tag += 1;
        self.deferred.insert(tag, (to, resp));
        ctx.set_timer(self.busy_until - now, tag);
    }

    fn begin_bootstrap(&mut self, ctx: &mut Ctx) {
        self.ready = false;
        self.feed_watch = None;
        let req = self.store.read("", ReadLevel::Linearizable, ctx);
        self.pending.insert(req, PendingApi::BootstrapList);
    }

    fn apply_feed_events(&mut self, events: Vec<Rc<KvEvent>>, revision: Revision, ctx: &mut Ctx) {
        let mut out: Vec<Rc<ObjEvent>> = Vec::with_capacity(events.len());
        for e in events {
            let oe = match e.as_ref() {
                KvEvent::Put { kv, .. } => {
                    self.cache
                        .insert(kv.key.as_str(), kv.value.clone(), kv.mod_revision);
                    ObjEvent {
                        key: kv.key.as_str().to_string(),
                        revision: kv.mod_revision,
                        value: Some(kv.value.clone()),
                    }
                }
                KvEvent::Delete { key, revision, .. } => {
                    self.cache.remove(key.as_str());
                    ObjEvent {
                        key: key.as_str().to_string(),
                        revision: *revision,
                        value: None,
                    }
                }
            };
            // One allocation per object event, shared by the window and
            // every watcher batch. The ring evicts oldest-first as it
            // fills, exactly like the push-all-then-trim deque it
            // replaced (the window never exceeds capacity between
            // deliveries, so per-push eviction drops the same events).
            let oe = Rc::new(oe);
            if let Some(dropped) = self.window.push(Rc::clone(&oe)) {
                self.window_floor = dropped.revision;
                ctx.counter_inc("apiserver.window_evicted");
            }
            out.push(oe);
        }
        if self.cfg.scale_telemetry {
            self.objects_peak = self.objects_peak.max(self.cache.len());
            self.window_peak = self.window_peak.max(self.window.len());
            ctx.gauge_set("apiserver.objects", self.objects_peak as i64);
            ctx.gauge_set("apiserver.window_peak", self.window_peak as i64);
        }
        if revision > self.cache_rev {
            self.cache_rev = revision;
            self.cache_advanced_at = ctx.now();
        }
        ctx.annotate("view.frontier", self.cache_rev.0.to_string());
        ctx.gauge_set("apiserver.cache_revision", self.cache_rev.0 as i64);
        // Fan out to component watchers.
        let cache_rev = self.cache_rev;
        for ((client, watch), (prefix, next_seq)) in self.watchers.iter_mut() {
            let matching: Vec<Rc<ObjEvent>> = out
                .iter()
                .filter(|e| e.key.starts_with(prefix.as_str()))
                .cloned()
                .collect();
            if !matching.is_empty() {
                let seq = *next_seq;
                *next_seq += 1;
                ctx.counter_add("apiserver.watch_delivered", matching.len() as u64);
                let batch = ApiWatchEvent {
                    watch: *watch,
                    stream_seq: seq,
                    events: matching,
                    revision: cache_rev,
                };
                let bytes = batch.wire_bytes();
                ctx.send_sized(*client, batch, bytes);
            }
        }
    }

    fn on_store_completion(&mut self, c: Completion, ctx: &mut Ctx) {
        match c {
            Completion::WatchEvents {
                watch,
                events,
                revision,
            } => {
                if Some(watch) == self.feed_watch {
                    self.apply_feed_events(events, revision, ctx);
                }
            }
            Completion::WatchCompacted { watch } => {
                if Some(watch) == self.feed_watch {
                    // Our resume point was compacted away: rebuild the cache.
                    self.begin_bootstrap(ctx);
                }
            }
            Completion::OpDone { req, result } => {
                let Some(p) = self.pending.remove(&req) else {
                    return;
                };
                self.on_op_done(p, result, ctx);
            }
        }
    }

    fn on_op_done(
        &mut self,
        pending: PendingApi,
        result: Result<OpResult, OpError>,
        ctx: &mut Ctx,
    ) {
        match pending {
            PendingApi::BootstrapList => {
                if let Ok(OpResult::Read { kvs, revision }) = result {
                    self.cache.clear();
                    for kv in kvs {
                        self.cache
                            .insert(kv.key.as_str(), kv.value, kv.mod_revision);
                    }
                    self.cache_rev = revision;
                    self.cache_advanced_at = ctx.now();
                    self.window.clear();
                    self.window_floor = revision;
                    self.ready = true;
                    self.feed_watch = Some(self.store.watch("", revision, ctx));
                    ctx.annotate("apiserver.ready", self.cache_rev.0.to_string());
                    ctx.annotate("view.frontier", self.cache_rev.0.to_string());
                } else {
                    // Store unavailable (e.g. election in progress): retry.
                    self.begin_bootstrap(ctx);
                }
            }
            PendingApi::FreshGet { client, req } => {
                let result = match result {
                    Ok(OpResult::Read { kvs, .. }) => Ok(ApiOk::Obj(
                        kvs.into_iter().next().map(|kv| (kv.value, kv.mod_revision)),
                    )),
                    _ => Err(ApiError::Unavailable),
                };
                let resp = ApiResponse { req, result };
                let bytes = resp.wire_bytes();
                ctx.send_sized(client, resp, bytes);
            }
            PendingApi::FreshList { client, req } => {
                let result = match result {
                    Ok(OpResult::Read { kvs, revision }) => Ok(ApiOk::List {
                        items: kvs
                            .into_iter()
                            .map(|kv| (kv.key.as_str().to_string(), kv.value, kv.mod_revision))
                            .collect(),
                        revision,
                    }),
                    _ => Err(ApiError::Unavailable),
                };
                let resp = ApiResponse { req, result };
                let bytes = resp.wire_bytes();
                ctx.send_sized(client, resp, bytes);
            }
            PendingApi::Write {
                client,
                req,
                not_exists,
            } => {
                let result = match result {
                    Ok(OpResult::Put { revision }) => Ok(ApiOk::Written(revision)),
                    Err(OpError::CasFailed { actual, .. }) => {
                        if not_exists {
                            Err(ApiError::AlreadyExists)
                        } else if actual.is_none() {
                            Err(ApiError::NotFound)
                        } else {
                            Err(ApiError::Conflict(actual))
                        }
                    }
                    _ => Err(ApiError::Unavailable),
                };
                ctx.send(client, ApiResponse { req, result });
            }
            PendingApi::Delete { client, req } => {
                let result = match result {
                    Ok(OpResult::Delete { existed, .. }) => Ok(ApiOk::Deleted { existed }),
                    Err(OpError::CasFailed { actual, .. }) => Err(ApiError::Conflict(actual)),
                    _ => Err(ApiError::Unavailable),
                };
                ctx.send(client, ApiResponse { req, result });
            }
            PendingApi::MarkRead {
                client,
                req,
                key,
                attempts,
            } => match result {
                Ok(OpResult::Read { kvs, .. }) => {
                    let Some(kv) = kvs.into_iter().next() else {
                        ctx.send(
                            client,
                            ApiResponse {
                                req,
                                result: Err(ApiError::NotFound),
                            },
                        );
                        return;
                    };
                    match Object::decode(&kv.value) {
                        Ok(mut obj) => {
                            if obj.meta.deletion_timestamp.is_some() {
                                // Already terminating: idempotent success.
                                ctx.send(
                                    client,
                                    ApiResponse {
                                        req,
                                        result: Ok(ApiOk::Written(kv.mod_revision)),
                                    },
                                );
                                return;
                            }
                            obj.meta.deletion_timestamp = Some(ctx.now().nanos());
                            let sreq = self.store.cas_put(
                                key.clone(),
                                obj.encode(),
                                Expect::ModRev(kv.mod_revision),
                                ctx,
                            );
                            self.pending.insert(
                                sreq,
                                PendingApi::MarkWrite {
                                    client,
                                    req,
                                    key,
                                    attempts,
                                },
                            );
                        }
                        Err(_) => ctx.send(
                            client,
                            ApiResponse {
                                req,
                                result: Err(ApiError::NotFound),
                            },
                        ),
                    }
                }
                _ => ctx.send(
                    client,
                    ApiResponse {
                        req,
                        result: Err(ApiError::Unavailable),
                    },
                ),
            },
            PendingApi::MarkWrite {
                client,
                req,
                key,
                attempts,
            } => match result {
                Ok(OpResult::Put { revision }) => {
                    ctx.send(
                        client,
                        ApiResponse {
                            req,
                            result: Ok(ApiOk::Written(revision)),
                        },
                    );
                }
                Err(OpError::CasFailed { .. }) if attempts < 3 => {
                    // Raced with another writer: re-read and retry.
                    let sreq = self.store.read(key.clone(), ReadLevel::Linearizable, ctx);
                    self.pending.insert(
                        sreq,
                        PendingApi::MarkRead {
                            client,
                            req,
                            key,
                            attempts: attempts + 1,
                        },
                    );
                }
                Err(OpError::CasFailed { actual, .. }) => {
                    ctx.send(
                        client,
                        ApiResponse {
                            req,
                            result: Err(ApiError::Conflict(actual)),
                        },
                    );
                }
                _ => ctx.send(
                    client,
                    ApiResponse {
                        req,
                        result: Err(ApiError::Unavailable),
                    },
                ),
            },
        }
    }

    fn on_api_request(&mut self, from: ActorId, r: ApiRequest, ctx: &mut Ctx) {
        match r.verb {
            Verb::Get { key, fresh } => {
                if fresh {
                    let sreq = self.store.read(key, ReadLevel::Linearizable, ctx);
                    self.pending.insert(
                        sreq,
                        PendingApi::FreshGet {
                            client: from,
                            req: r.req,
                        },
                    );
                } else if !self.ready {
                    ctx.send(
                        from,
                        ApiResponse {
                            req: r.req,
                            result: Err(ApiError::Unavailable),
                        },
                    );
                } else {
                    let obj = self.cache.get(&key).map(|(v, rv)| (v.clone(), rv));
                    self.reply_cached(
                        from,
                        ApiResponse {
                            req: r.req,
                            result: Ok(ApiOk::Obj(obj)),
                        },
                        ctx,
                    );
                }
            }
            Verb::List { prefix, fresh } => {
                if fresh {
                    let sreq = self.store.read(prefix, ReadLevel::Linearizable, ctx);
                    self.pending.insert(
                        sreq,
                        PendingApi::FreshList {
                            client: from,
                            req: r.req,
                        },
                    );
                } else if !self.ready {
                    ctx.send(
                        from,
                        ApiResponse {
                            req: r.req,
                            result: Err(ApiError::Unavailable),
                        },
                    );
                } else {
                    // Merged across shards back into lexical key order —
                    // identical to the single-map scan it replaced.
                    let items: Vec<(String, Value, Revision)> = self
                        .cache
                        .range_prefix(&prefix)
                        .map(|(k, v, rv)| (k.as_str().to_string(), v.clone(), rv))
                        .collect();
                    self.reply_cached(
                        from,
                        ApiResponse {
                            req: r.req,
                            result: Ok(ApiOk::List {
                                items,
                                revision: self.cache_rev,
                            }),
                        },
                        ctx,
                    );
                }
            }
            Verb::Create { key, value } => {
                let sreq = self.store.cas_put(key, value, Expect::NotExists, ctx);
                self.pending.insert(
                    sreq,
                    PendingApi::Write {
                        client: from,
                        req: r.req,
                        not_exists: true,
                    },
                );
            }
            Verb::Update {
                key,
                value,
                expect_rv,
            } => {
                let expect = match expect_rv {
                    Some(rv) => Expect::ModRev(rv),
                    None => Expect::Any,
                };
                let sreq = self.store.cas_put(key, value, expect, ctx);
                self.pending.insert(
                    sreq,
                    PendingApi::Write {
                        client: from,
                        req: r.req,
                        not_exists: false,
                    },
                );
            }
            Verb::Delete { key, expect_rv } => {
                let expect = match expect_rv {
                    Some(rv) => Expect::ModRev(rv),
                    None => Expect::Any,
                };
                let sreq = self.store.delete(key, expect, ctx);
                self.pending.insert(
                    sreq,
                    PendingApi::Delete {
                        client: from,
                        req: r.req,
                    },
                );
            }
            Verb::MarkDeleted { key } => {
                let sreq = self.store.read(key.clone(), ReadLevel::Linearizable, ctx);
                self.pending.insert(
                    sreq,
                    PendingApi::MarkRead {
                        client: from,
                        req: r.req,
                        key,
                        attempts: 0,
                    },
                );
            }
        }
    }

    fn on_watch_create(&mut self, from: ActorId, w: ApiWatchCreate, ctx: &mut Ctx) {
        if !self.ready {
            // Not serving yet: refuse explicitly so the client re-lists
            // instead of waiting on a stream that was never registered.
            ctx.send(
                from,
                ApiWatchCancelled {
                    watch: w.watch,
                    reason: WatchError::NotReady,
                },
            );
            return;
        }
        // `after` is a genuine resume point; revision 0 means "from the
        // dawn of history". If that history predates the window, refuse —
        // never silently skip to "now" (that would manufacture a gap).
        let after = w.after;
        if after < self.window_floor {
            ctx.counter_inc("apiserver.watch_too_old");
            ctx.send(
                from,
                ApiWatchCancelled {
                    watch: w.watch,
                    reason: WatchError::TooOldResourceVersion {
                        oldest: Revision(self.window_floor.0 + 1),
                    },
                },
            );
            return;
        }
        let backlog: Vec<Rc<ObjEvent>> = self
            .window
            .iter()
            .filter(|e| e.revision > after && e.key.starts_with(&w.prefix))
            .cloned()
            .collect();
        let first_seq = if backlog.is_empty() { 0 } else { 1 };
        self.watchers
            .insert((from, w.watch), (w.prefix.clone(), first_seq));
        if !backlog.is_empty() {
            ctx.send(
                from,
                ApiWatchEvent {
                    watch: w.watch,
                    stream_seq: 0,
                    events: backlog,
                    revision: self.cache_rev,
                },
            );
        }
    }
}

impl Actor for ApiServer {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.cfg.tick, TAG_TICK);
        ctx.set_timer(self.cfg.progress_interval, TAG_PROGRESS);
        self.begin_bootstrap(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        // Everything is volatile: cache, window, watchers, in-flight work.
        self.store = StoreClient::new(self.cfg.store.clone());
        self.cache.clear();
        self.cache_rev = Revision::ZERO;
        self.ready = false;
        self.window.clear();
        self.objects_peak = 0;
        self.window_peak = 0;
        self.window_floor = Revision::ZERO;
        self.watchers.clear();
        self.pending.clear();
        self.feed_watch = None;
        self.busy_until = ph_sim::SimTime::ZERO;
        self.cache_advanced_at = ph_sim::SimTime::ZERO;
        self.deferred.clear();
        self.next_defer_tag = TAG_DEFER_BASE;
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if self.store.on_message(from, &msg, ctx, &mut completions) {
            for c in completions {
                self.on_store_completion(c, ctx);
            }
            return;
        }
        if let Some(r) = msg.downcast_ref::<ApiRequest>() {
            self.on_api_request(from, r.clone(), ctx);
            return;
        }
        if let Some(w) = msg.downcast_ref::<ApiWatchCreate>() {
            self.on_watch_create(from, w.clone(), ctx);
            return;
        }
        if let Some(c) = msg.downcast_ref::<ApiWatchCancelReq>() {
            self.watchers.remove(&(from, c.watch));
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag >= TAG_DEFER_BASE {
            if let Some((to, resp)) = self.deferred.remove(&tag) {
                let bytes = resp.wire_bytes();
                ctx.send_sized(to, resp, bytes);
            }
            return;
        }
        match tag {
            TAG_TICK => {
                self.store.tick(ctx);
                ctx.set_timer(self.cfg.tick, TAG_TICK);
            }
            TAG_PROGRESS => {
                let cache_rev = self.cache_rev;
                for ((client, watch), (_, next_seq)) in self.watchers.iter_mut() {
                    let seq = *next_seq;
                    *next_seq += 1;
                    ctx.send(
                        *client,
                        ApiWatchProgress {
                            watch: *watch,
                            stream_seq: seq,
                            revision: cache_rev,
                        },
                    );
                }
                ctx.set_timer(self.cfg.progress_interval, TAG_PROGRESS);
            }
            _ => {}
        }
    }
}
