//! # ph-cluster — a Kubernetes-like cluster management stack
//!
//! The infrastructure substrate the paper's bugs live in (§2, Figure 1):
//! a strongly consistent store (`ph-store`) at the bottom, *apiservers*
//! with watch caches above it, and components — *kubelets*, a *scheduler*,
//! *controllers*, and a Cassandra *operator* — that observe the cluster
//! state through client caches fed by notification streams. Every layer
//! adds a cache, and therefore a partial history.
//!
//! Components come in **buggy** and **fixed** variants, switched by
//! configuration, reproducing the real defects the paper cites:
//!
//! | Bug | Component | Pattern |
//! |---|---|---|
//! | Kubernetes-59848 | [`kubelet`] | time traveling (§2, §4.2.2, Figure 2) |
//! | Kubernetes-56261 | [`scheduler`] | missed deletion / staleness (§4.2.3) |
//! | controller bug [17] | [`controllers::VolumeController`] | observability gap (§4.2.3) |
//! | cassandra-operator-398/400/402 | [`operator`] | gaps / staleness (§7) |
//!
//! Layout:
//! * [`objects`] — the typed object model (pods, nodes, PVCs, …) and its
//!   store codec;
//! * [`api`] — apiserver wire messages;
//! * [`apiserver`] — the apiserver actor: watch-cache fed from the store,
//!   cache-or-quorum reads, write pass-through with optimistic concurrency,
//!   a rolling watch-event window ([7] in the paper);
//! * [`apiclient`] — embeddable apiserver client with retry and
//!   upstream-switching (the time-travel vector);
//! * [`informer`] — the client-go analog: list+watch reflector maintaining
//!   a local object cache `(H′, S′)`;
//! * [`kubelet`], [`scheduler`], [`controllers`], [`operator`] — the
//!   services;
//! * [`slab`] — the interned-key slab, sharded cache, and window ring the
//!   apiserver's watch cache runs on at scale;
//! * [`topology`] — helpers that assemble whole clusters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod apiclient;
pub mod apiserver;
pub mod controllers;
pub mod informer;
pub mod kubelet;
pub mod objects;
pub mod operator;
pub mod scheduler;
pub mod slab;
pub mod topology;

pub use api::{ApiError, ApiOk, ApiRequest, ApiResponse, Verb};
pub use apiclient::{ApiClient, ApiClientConfig, ApiCompletion, PickPolicy};
pub use apiserver::{ApiServer, ApiServerConfig};
pub use informer::{Informer, InformerConfig, InformerEvent};
pub use kubelet::{Kubelet, KubeletConfig};
pub use objects::{Object, ObjectKind, ObjectMeta, PodPhase};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use slab::{ObjectSlab, ShardedCache, WindowRing};
pub use topology::{spawn_cluster, ClusterConfig, ClusterHandle};
