//! Cluster-layer edge cases: the watch window, informer recovery,
//! apiserver restarts mid-stream, and the MarkDeleted retry path.

use ph_cluster::apiclient::{ApiClient, ApiClientConfig, ApiCompletion};
use ph_cluster::apiserver::{ApiServer, ApiServerConfig};
use ph_cluster::informer::{Informer, InformerConfig, InformerEvent};
use ph_cluster::objects::Object;
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, SimTime, TimerId, World, WorldConfig};
use ph_store::node::StoreNodeConfig;
use ph_store::{spawn_store_cluster, Revision, StoreClientConfig};

/// A minimal informer-owner actor for direct informer testing.
struct InformerHost {
    client: ApiClient,
    informer: Informer,
    events: Vec<String>,
    relists: u32,
}

impl InformerHost {
    fn new(apiservers: Vec<ActorId>, prefix: &str) -> InformerHost {
        InformerHost {
            client: ApiClient::new(ApiClientConfig::new(apiservers), 0),
            informer: Informer::new(InformerConfig::new(prefix)),
            events: Vec::new(),
            relists: 0,
        }
    }
}

impl Actor for InformerHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(Duration::millis(30), 0);
    }
    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events = Vec::new();
        for c in &completions {
            self.informer
                .on_completion(c, &mut self.client, ctx, &mut events);
        }
        for e in events {
            match e {
                InformerEvent::Synced { .. } => {
                    self.relists += 1;
                    self.events.push("synced".into());
                }
                InformerEvent::Added(o) => self.events.push(format!("add {}", o.meta.name)),
                InformerEvent::Updated { new, .. } => {
                    self.events.push(format!("upd {}", new.meta.name))
                }
                InformerEvent::Deleted { key, .. } => self.events.push(format!("del {key}")),
            }
        }
    }
    fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
        self.client.tick(ctx);
        self.informer.poll(&mut self.client, ctx);
        ctx.set_timer(Duration::millis(30), 0);
    }
}

fn base_world(seed: u64) -> (World, ph_cluster::topology::ClusterHandle) {
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_cluster(&mut world, &ClusterConfig::default());
    assert!(cluster.wait_ready(&mut world, SimTime(Duration::secs(1).as_nanos())));
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    (world, cluster)
}

#[test]
fn informer_mirrors_adds_updates_and_deletes() {
    let (mut world, cluster) = base_world(81);
    let host = world.spawn(
        "host",
        InformerHost::new(cluster.apiservers.clone(), "nodes/"),
    );
    world.run_for(Duration::millis(300));
    let dl = SimTime(world.now().0 + Duration::secs(5).as_nanos());
    cluster.create_object(&mut world, &Object::node("n1"), dl);
    cluster.create_object(&mut world, &Object::node("n1"), dl); // update
    cluster.delete_key(&mut world, "nodes/n1", dl);
    world.run_for(Duration::millis(300));
    let h = world.actor_ref::<InformerHost>(host).unwrap();
    assert_eq!(
        h.events,
        vec!["synced", "add n1", "upd n1", "del nodes/n1"],
        "{:?}",
        h.events
    );
    assert!(h.informer.is_empty());
}

#[test]
fn apiserver_restart_forces_informer_resync() {
    let (mut world, cluster) = base_world(82);
    let dl = SimTime(world.now().0 + Duration::secs(20).as_nanos());
    cluster.create_object(&mut world, &Object::node("n1"), dl);
    let host = world.spawn(
        "host",
        InformerHost::new(vec![cluster.apiservers[0]], "nodes/"),
    );
    world.run_for(Duration::millis(300));
    assert_eq!(
        world.actor_ref::<InformerHost>(host).unwrap().relists,
        1,
        "initial sync"
    );
    // Restart the apiserver: the informer's watch dies; liveness timeout
    // plus the fresh window must bring the informer back in sync.
    world.crash(cluster.apiservers[0]);
    cluster.create_object(&mut world, &Object::node("n2"), dl);
    world.run_for(Duration::millis(200));
    world.restart(cluster.apiservers[0]);
    world.run_for(Duration::secs(3));
    let h = world.actor_ref::<InformerHost>(host).unwrap();
    assert!(h.informer.is_synced());
    assert!(
        h.informer.get("nodes/n2").is_some(),
        "informer missed the write that happened during the outage: {:?}",
        h.events
    );
}

#[test]
fn watch_window_overflow_cancels_old_resumes() {
    // A tiny window: resuming after a burst larger than the window must be
    // refused with TooOldResourceVersion, forcing a re-list (§4.2.3, [7]).
    let mut world = World::new(WorldConfig::default(), 83);
    let store = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
    let mut cfg = ApiServerConfig::new(StoreClientConfig::new(store.nodes.clone()));
    cfg.window = 5;
    let api = world.spawn("apiserver-1", ApiServer::new(cfg));
    store
        .wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()))
        .expect("leader");
    world.run_until(SimTime(Duration::secs(1).as_nanos()));

    // Host A keeps a live informer (to observe normal operation); we also
    // seed 20 writes so the 5-event window rolls over many times.
    let admin = world.spawn(
        "admin",
        ph_store::client::BasicClient::new(
            ph_store::StoreClient::new(StoreClientConfig::new(store.nodes.clone())),
            Duration::millis(20),
        ),
    );
    for i in 0..20 {
        let req = world.invoke::<ph_store::client::BasicClient, _>(admin, move |bc, ctx| {
            bc.client.put(
                format!("nodes/n{i}"),
                Object::node(format!("n{i}")).encode(),
                ctx,
            )
        });
        while world
            .actor_ref::<ph_store::client::BasicClient>(admin)
            .unwrap()
            .result_of(req)
            .is_none()
        {
            world.step();
        }
    }

    // Now ask for a watch from revision 1 — far below the window floor.
    struct RawWatcher {
        cancelled: bool,
    }
    impl Actor for RawWatcher {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, _f: ActorId, msg: AnyMsg, _c: &mut Ctx) {
            if msg.is::<ph_cluster::api::ApiWatchCancelled>() {
                self.cancelled = true;
            }
        }
    }
    let w = world.spawn("raw-watcher", RawWatcher { cancelled: false });
    world.invoke::<RawWatcher, _>(w, move |_, ctx| {
        ctx.send(
            api,
            ph_cluster::api::ApiWatchCreate {
                watch: 1,
                prefix: "nodes/".into(),
                after: Revision(1),
            },
        );
    });
    world.run_for(Duration::millis(100));
    assert!(
        world.actor_ref::<RawWatcher>(w).unwrap().cancelled,
        "resume below the rolling window must be refused"
    );
}

#[test]
fn informer_survives_window_overflow_via_relist() {
    // End-to-end: an informer whose apiserver has a tiny window and whose
    // feed is interrupted long enough to overflow it must recover by
    // re-listing, ending consistent with the truth.
    let mut world = World::new(WorldConfig::default(), 84);
    let store = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
    let mut cfg = ApiServerConfig::new(StoreClientConfig::new(store.nodes.clone()));
    cfg.window = 4;
    let api = world.spawn("apiserver-1", ApiServer::new(cfg));
    store
        .wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()))
        .expect("leader");
    world.run_until(SimTime(Duration::secs(1).as_nanos()));

    let host = world.spawn("host", InformerHost::new(vec![api], "nodes/"));
    world.run_for(Duration::millis(300));

    // Cut the host off from the apiserver while 12 writes roll the window.
    let p = world.partition(&[host], &[api]);
    let admin = world.spawn(
        "admin",
        ph_store::client::BasicClient::new(
            ph_store::StoreClient::new(StoreClientConfig::new(store.nodes.clone())),
            Duration::millis(20),
        ),
    );
    for i in 0..12 {
        let req = world.invoke::<ph_store::client::BasicClient, _>(admin, move |bc, ctx| {
            bc.client.put(
                format!("nodes/n{i}"),
                Object::node(format!("n{i}")).encode(),
                ctx,
            )
        });
        while world
            .actor_ref::<ph_store::client::BasicClient>(admin)
            .unwrap()
            .result_of(req)
            .is_none()
        {
            world.step();
        }
    }
    world.run_for(Duration::millis(500));
    world.heal(p);
    world.run_for(Duration::secs(4));

    let h = world.actor_ref::<InformerHost>(host).unwrap();
    assert!(h.informer.is_synced());
    assert_eq!(h.informer.len(), 12, "informer must converge after re-list");
    assert!(
        h.relists >= 2,
        "a re-list should have occurred: {}",
        h.relists
    );
}

#[test]
fn mark_deleted_is_idempotent_and_survives_races() {
    let (mut world, cluster) = base_world(85);
    let dl = SimTime(world.now().0 + Duration::secs(20).as_nanos());
    cluster.create_object(&mut world, &Object::pod("p1", None, None), dl);

    struct Marker {
        client: ApiClient,
        results: Vec<bool>,
    }
    impl Actor for Marker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Duration::millis(30), 0);
        }
        fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
            let mut out = Vec::new();
            if self.client.on_message(from, &msg, ctx, &mut out) {
                for c in out {
                    if let ApiCompletion::Done { result, .. } = c {
                        self.results.push(result.is_ok());
                    }
                }
            }
        }
        fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
            self.client.tick(ctx);
            ctx.set_timer(Duration::millis(30), 0);
        }
    }
    let m = world.spawn(
        "marker",
        Marker {
            client: ApiClient::new(ApiClientConfig::new(cluster.apiservers.clone()), 0),
            results: Vec::new(),
        },
    );
    // Two concurrent marks racing each other (read-CAS-retry inside the
    // apiserver must absorb the conflict).
    world.invoke::<Marker, _>(m, |mk, ctx| {
        mk.client.mark_deleted("pods/p1", ctx);
        mk.client.mark_deleted("pods/p1", ctx);
    });
    world.run_for(Duration::secs(1));
    let marker = world.actor_ref::<Marker>(m).unwrap();
    assert_eq!(marker.results, vec![true, true], "both marks must succeed");
    let s = cluster.ground_truth(&world);
    assert!(s["pods/p1"].is_terminating());
}
