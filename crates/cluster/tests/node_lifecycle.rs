//! Node-lifecycle controller behaviour: lease-driven readiness flips and
//! the eviction policy split.

use ph_cluster::objects::{Body, Object};
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_sim::{Duration, SimTime, World, WorldConfig};

fn build(seed: u64, force_evict: bool) -> (World, ph_cluster::topology::ClusterHandle) {
    let cfg = ClusterConfig {
        scheduler: Some(true),
        rs_controller: Some(false),
        node_lifecycle: Some(force_evict),
        ..ClusterConfig::default()
    };
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, SimTime(Duration::secs(1).as_nanos())));
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    let dl = SimTime(world.now().0 + Duration::secs(30).as_nanos());
    for n in ["node-1", "node-2"] {
        cluster.create_object(&mut world, &Object::node(n), dl);
    }
    (world, cluster)
}

fn node_ready(world: &World, cluster: &ph_cluster::topology::ClusterHandle, name: &str) -> bool {
    match cluster.ground_truth(world).get(&format!("nodes/{name}")) {
        Some(o) => matches!(o.body, Body::Node { ready: true }),
        None => false,
    }
}

#[test]
fn heartbeats_keep_nodes_ready() {
    let (mut world, cluster) = build(91, false);
    world.run_for(Duration::secs(3));
    // Leases are being renewed; both nodes stay ready.
    assert!(node_ready(&world, &cluster, "node-1"));
    assert!(node_ready(&world, &cluster, "node-2"));
    let s = cluster.ground_truth(&world);
    assert!(s.contains_key("leases/node-1"));
    assert!(s.contains_key("leases/node-2"));
}

#[test]
fn partition_marks_node_not_ready_and_heal_restores() {
    let (mut world, cluster) = build(92, false);
    world.run_for(Duration::secs(2));
    // Cut kubelet-2 off from the apiservers: renewals stop flowing.
    let k2 = cluster.kubelets[1];
    let p = world.partition(&[k2], &cluster.apiservers.clone());
    world.run_for(Duration::secs(2));
    assert!(!node_ready(&world, &cluster, "node-2"), "lease expired");
    assert!(node_ready(&world, &cluster, "node-1"));
    // Heal: renewals resume, the controller flips the node back.
    world.heal(p);
    world.run_for(Duration::secs(2));
    assert!(node_ready(&world, &cluster, "node-2"), "recovered");
}

#[test]
fn conservative_controller_keeps_pods_bound_through_a_partition() {
    let (mut world, cluster) = build(93, false);
    let dl = SimTime(world.now().0 + Duration::secs(30).as_nanos());
    cluster.create_object(
        &mut world,
        &Object::new("web", Body::ReplicaSet { replicas: 2 }),
        dl,
    );
    // No RS controller in this build: create the pods directly, one per node.
    cluster.create_object(
        &mut world,
        &Object::pod("web-0", Some("node-1".into()), None),
        dl,
    );
    cluster.create_object(
        &mut world,
        &Object::pod("web-1", Some("node-2".into()), None),
        dl,
    );
    world.run_for(Duration::secs(1));

    let k2 = cluster.kubelets[1];
    let p = world.partition(&[k2], &cluster.apiservers.clone());
    world.run_for(Duration::secs(3));
    // Node not ready, but the pod object is untouched and still bound.
    assert!(!node_ready(&world, &cluster, "node-2"));
    let s = cluster.ground_truth(&world);
    assert_eq!(
        s.get("pods/web-1")
            .and_then(|o| o.pod_node().map(String::from)),
        Some("node-2".to_string()),
        "conservative controller must not move the pod"
    );
    world.heal(p);
}

#[test]
fn aggressive_controller_evicts_pods_from_unreachable_nodes() {
    let (mut world, cluster) = build(94, true);
    let dl = SimTime(world.now().0 + Duration::secs(30).as_nanos());
    cluster.create_object(
        &mut world,
        &Object::pod("web-1", Some("node-2".into()), None),
        dl,
    );
    world.run_for(Duration::secs(1));

    let k2 = cluster.kubelets[1];
    let p = world.partition(&[k2], &cluster.apiservers.clone());
    world.run_for(Duration::secs(3));
    let s = cluster.ground_truth(&world);
    assert!(
        !s.contains_key("pods/web-1"),
        "aggressive controller force-deletes pods from unreachable nodes"
    );
    let evictions = world.trace().annotations("nlc.force_evict").count();
    assert!(evictions >= 1);
    world.heal(p);
}
