//! End-to-end cluster tests: the full Figure-1 pipeline under no faults.

use ph_cluster::controllers::VcMode;
use ph_cluster::kubelet::Kubelet;
use ph_cluster::objects::{Body, Object, PodPhase};
use ph_cluster::operator::OperatorFlags;
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_sim::{Duration, SimTime, World, WorldConfig};

fn deadline() -> SimTime {
    SimTime(Duration::secs(30).as_nanos())
}

/// Runs until `pred` holds over the ground truth, or panics at `limit`.
fn settle(
    world: &mut World,
    cluster: &ph_cluster::topology::ClusterHandle,
    limit: Duration,
    what: &str,
    pred: impl Fn(&std::collections::BTreeMap<String, Object>, &World) -> bool,
) {
    let end = world.now() + limit;
    loop {
        let s = cluster.ground_truth(world);
        if pred(&s, world) {
            return;
        }
        if world.now() >= end {
            let keys: Vec<&String> = s.keys().collect();
            panic!("{} not reached within {}; state: {:?}", what, limit, keys);
        }
        world.run_for(Duration::millis(50));
    }
}

#[test]
fn replicaset_pipeline_runs_pods() {
    let mut world = World::new(WorldConfig::default(), 41);
    let cfg = ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(false),
        ..ClusterConfig::default()
    };
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, deadline()));
    for n in &cfg.nodes {
        cluster
            .create_object(&mut world, &Object::node(n.clone()), deadline())
            .expect("seed node");
    }
    cluster
        .create_object(
            &mut world,
            &Object::new("web", Body::ReplicaSet { replicas: 3 }),
            deadline(),
        )
        .expect("seed rs");

    // RS controller creates 3 pods, scheduler binds, kubelets run.
    settle(
        &mut world,
        &cluster,
        Duration::secs(10),
        "3 running pods",
        |s, _| {
            let running = s
                .values()
                .filter(|o| {
                    matches!(
                        o.body,
                        Body::Pod {
                            phase: PodPhase::Running,
                            ..
                        }
                    )
                })
                .count();
            running == 3
        },
    );

    // Kubelets actually hold the containers.
    let total_running: usize = cluster
        .kubelets
        .iter()
        .map(|&k| world.actor_ref::<Kubelet>(k).unwrap().running_pods().len())
        .sum();
    assert_eq!(total_running, 3);

    // Spread across both nodes (least-loaded scheduling).
    let per_node: Vec<usize> = cluster
        .kubelets
        .iter()
        .map(|&k| world.actor_ref::<Kubelet>(k).unwrap().running_pods().len())
        .collect();
    assert!(per_node.iter().all(|&c| c >= 1), "spread {per_node:?}");
}

#[test]
fn scale_down_stops_and_finalizes_pods() {
    let mut world = World::new(WorldConfig::default(), 42);
    let cfg = ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(true), // with PVCs
        volume_controller: Some(VcMode::FreshOrphan),
        ..ClusterConfig::default()
    };
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, deadline()));
    for n in &cfg.nodes {
        cluster
            .create_object(&mut world, &Object::node(n.clone()), deadline())
            .expect("seed node");
    }
    cluster
        .create_object(
            &mut world,
            &Object::new("db", Body::ReplicaSet { replicas: 2 }),
            deadline(),
        )
        .expect("seed rs");

    settle(
        &mut world,
        &cluster,
        Duration::secs(10),
        "2 running pods",
        |s, _| {
            s.values()
                .filter(|o| {
                    matches!(
                        o.body,
                        Body::Pod {
                            phase: PodPhase::Running,
                            ..
                        }
                    )
                })
                .count()
                == 2
        },
    );
    // PVCs exist for both pods.
    let s = cluster.ground_truth(&world);
    assert_eq!(s.keys().filter(|k| k.starts_with("pvcs/")).count(), 2);

    // Scale down to 0: pods are marked, kubelets stop+finalize, the volume
    // controller releases the PVCs.
    cluster
        .create_object(
            &mut world,
            &Object::new("db", Body::ReplicaSet { replicas: 0 }),
            deadline(),
        )
        .expect("scale down");

    settle(
        &mut world,
        &cluster,
        Duration::secs(15),
        "no pods and no pvcs",
        |s, _| {
            !s.keys().any(|k| k.starts_with("pods/db-"))
                && !s.keys().any(|k| k.starts_with("pvcs/"))
        },
    );
    // Containers actually stopped.
    let total_running: usize = cluster
        .kubelets
        .iter()
        .map(|&k| world.actor_ref::<Kubelet>(k).unwrap().running_pods().len())
        .sum();
    assert_eq!(total_running, 0);
}

#[test]
fn cassandra_operator_scales_up_and_down() {
    let mut world = World::new(WorldConfig::default(), 43);
    let cfg = ClusterConfig {
        scheduler: Some(false),
        operator: Some(OperatorFlags::fixed()),
        ..ClusterConfig::default()
    };
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, deadline()));
    for n in &cfg.nodes {
        cluster
            .create_object(&mut world, &Object::node(n.clone()), deadline())
            .expect("seed node");
    }
    cluster
        .create_object(
            &mut world,
            &Object::new("dc1", Body::CassandraDatacenter { desired: 3 }),
            deadline(),
        )
        .expect("seed dc");

    settle(
        &mut world,
        &cluster,
        Duration::secs(10),
        "3 cass pods + pvcs",
        |s, _| {
            let pods = s
                .values()
                .filter(|o| {
                    o.kind() == ph_cluster::ObjectKind::Pod
                        && o.meta.owner.as_deref() == Some("dc1")
                        && matches!(
                            o.body,
                            Body::Pod {
                                phase: PodPhase::Running,
                                ..
                            }
                        )
                })
                .count();
            let pvcs = s.keys().filter(|k| k.starts_with("pvcs/dc1-pvc-")).count();
            pods == 3 && pvcs == 3
        },
    );

    // Scale to 2: the highest-index pod is decommissioned and its PVC
    // cleaned up.
    cluster
        .create_object(
            &mut world,
            &Object::new("dc1", Body::CassandraDatacenter { desired: 2 }),
            deadline(),
        )
        .expect("scale down");
    settle(
        &mut world,
        &cluster,
        Duration::secs(15),
        "dc1-2 gone",
        |s, _| !s.contains_key("pods/dc1-2") && !s.contains_key("pvcs/dc1-pvc-2"),
    );
    let s = cluster.ground_truth(&world);
    assert!(s.contains_key("pods/dc1-0") && s.contains_key("pods/dc1-1"));
    assert!(s.contains_key("pvcs/dc1-pvc-0") && s.contains_key("pvcs/dc1-pvc-1"));
}

#[test]
fn apiserver_crash_recovery_resumes_service() {
    let mut world = World::new(WorldConfig::default(), 44);
    let cfg = ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(false),
        ..ClusterConfig::default()
    };
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, deadline()));
    for n in &cfg.nodes {
        cluster
            .create_object(&mut world, &Object::node(n.clone()), deadline())
            .expect("seed node");
    }
    cluster
        .create_object(
            &mut world,
            &Object::new("web", Body::ReplicaSet { replicas: 2 }),
            deadline(),
        )
        .expect("seed rs");
    settle(
        &mut world,
        &cluster,
        Duration::secs(10),
        "2 running",
        |s, _| {
            s.values()
                .filter(|o| {
                    matches!(
                        o.body,
                        Body::Pod {
                            phase: PodPhase::Running,
                            ..
                        }
                    )
                })
                .count()
                == 2
        },
    );

    // Crash apiserver-1 (most components' upstream), scale up while down,
    // restart, and require convergence.
    let api1 = cluster.apiservers[0];
    world.crash(api1);
    cluster
        .create_object(
            &mut world,
            &Object::new("web", Body::ReplicaSet { replicas: 4 }),
            deadline(),
        )
        .expect("scale up during apiserver outage");
    world.run_for(Duration::millis(500));
    world.restart(api1);

    settle(
        &mut world,
        &cluster,
        Duration::secs(20),
        "4 running",
        |s, _| {
            s.values()
                .filter(|o| {
                    matches!(
                        o.body,
                        Body::Pod {
                            phase: PodPhase::Running,
                            ..
                        }
                    )
                })
                .count()
                == 4
        },
    );
}

#[test]
fn identical_seeds_identical_cluster_traces() {
    let run = |seed: u64| {
        let mut world = World::new(WorldConfig::default(), seed);
        let cfg = ClusterConfig {
            scheduler: Some(false),
            rs_controller: Some(false),
            ..ClusterConfig::default()
        };
        let cluster = spawn_cluster(&mut world, &cfg);
        cluster.wait_ready(&mut world, deadline());
        for n in &cfg.nodes {
            cluster.create_object(&mut world, &Object::node(n.clone()), deadline());
        }
        cluster.create_object(
            &mut world,
            &Object::new("web", Body::ReplicaSet { replicas: 2 }),
            deadline(),
        );
        world.run_for(Duration::secs(3));
        world.trace().digest()
    };
    assert_eq!(run(77), run(77), "cluster runs must be replayable");
    assert_ne!(run(77), run(78));
}
