//! Property tests for the queueing network model.
//!
//! Random topologies and flows are generated from fixed-seed [`SimRng`]s
//! (the same in-tree idiom as `proptests.rs` — no third-party framework, so
//! the exact case set is pinned forever). Each seeded case builds a random
//! set of finite-bandwidth links and drives a random message flow through
//! [`Network::offer`], then checks the queue discipline's core invariants:
//!
//! 1. **Per-link FIFO order** — on a FIFO link, delivery times never
//!    reorder relative to offer order.
//! 2. **Conservation** — every offered message is exactly one of
//!    delivered-in-future (in flight), or lost with a recorded reason;
//!    at the world level, sent == delivered + dropped + in-flight.
//! 3. **Capacity bound** — queue occupancy never exceeds the configured
//!    drop-tail capacity, and admissions past capacity tail-drop.
//! 4. **Zero-load latency** — an idle link delivers after exactly
//!    transmission + propagation; a zero-size message sees pure
//!    propagation delay.

use ph_sim::net::{LinkConfig, NetConfig, Network, SendOutcome};
use ph_sim::{
    Actor, ActorId, AnyMsg, Ctx, DropReason, Duration, SimRng, SimTime, TraceEventKind, World,
    WorldConfig,
};

/// Number of seeded random cases per property (the ISSUE's floor is 100).
const CASES: u64 = 120;

/// A random finite-bandwidth link: 1 KB/s – 10 MB/s, 0–500 µs propagation,
/// optional jitter, drop-tail capacity 1–16 (or unbounded).
fn random_queued_link(rng: &mut SimRng, fifo: bool) -> LinkConfig {
    LinkConfig {
        latency: Duration::micros(rng.below(500)),
        jitter: if rng.chance(0.3) {
            Duration::micros(rng.below(50))
        } else {
            Duration::ZERO
        },
        loss: 0.0,
        fifo,
        bandwidth: rng.range(1_000, 10_000_000),
        queue: if rng.chance(0.5) {
            rng.range(1, 16) as usize
        } else {
            0
        },
    }
}

/// Drives `count` offers of random sizes at non-decreasing random times over
/// the `src → dst` link, returning `(offer_time, outcome)` pairs.
fn random_flow(
    net: &mut Network,
    rng: &mut SimRng,
    src: ActorId,
    dst: ActorId,
    count: usize,
) -> Vec<(SimTime, SendOutcome)> {
    let mut now = SimTime(0);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        now = SimTime(now.0 + rng.below(200_000));
        let size = rng.below(64 * 1024);
        out.push((now, net.offer(src, dst, now, rng, size, Duration::ZERO)));
    }
    out
}

#[test]
fn fifo_queued_links_never_reorder_across_seeds() {
    for seed in 0..CASES {
        let mut rng = SimRng::from_seed(seed);
        let mut net = Network::new(NetConfig::default());
        let (src, dst) = (ActorId(0), ActorId(1));
        net.set_link(src, dst, random_queued_link(&mut rng, true));
        let mut last = None;
        for (i, (_, outcome)) in random_flow(&mut net, &mut rng, src, dst, 120)
            .into_iter()
            .enumerate()
        {
            let at = match outcome {
                SendOutcome::Queued { at, .. } | SendOutcome::DeliverAt(at) => at,
                SendOutcome::Lost(DropReason::QueueFull) => continue,
                other => panic!("seed {seed}: unexpected {other:?}"),
            };
            if let Some(prev) = last {
                assert!(at > prev, "seed {seed}: message {i} overtook predecessor");
            }
            last = Some(at);
        }
    }
}

#[test]
fn every_offer_is_admitted_or_lost_with_a_reason() {
    for seed in 0..CASES {
        let mut rng = SimRng::from_seed(0x1000 + seed);
        let mut net = Network::new(NetConfig::default());
        let (src, dst) = (ActorId(0), ActorId(1));
        let fifo = rng.chance(0.8);
        net.set_link(src, dst, random_queued_link(&mut rng, fifo));
        let (mut admitted, mut lost) = (0usize, 0usize);
        let flow = random_flow(&mut net, &mut rng, src, dst, 150);
        for (now, outcome) in &flow {
            match outcome {
                SendOutcome::Queued { at, .. } => {
                    assert!(*at > *now, "seed {seed}: delivery not in the future");
                    admitted += 1;
                }
                SendOutcome::DeliverAt(_) => {
                    panic!("seed {seed}: queued link took the legacy path")
                }
                SendOutcome::Lost(DropReason::QueueFull) => lost += 1,
                SendOutcome::Lost(other) => {
                    panic!("seed {seed}: unexpected loss {other:?}")
                }
            }
        }
        assert_eq!(admitted + lost, flow.len(), "seed {seed}: conservation");
    }
}

#[test]
fn queue_occupancy_never_exceeds_capacity() {
    for seed in 0..CASES {
        let mut rng = SimRng::from_seed(0x2000 + seed);
        let mut net = Network::new(NetConfig::default());
        let (src, dst) = (ActorId(0), ActorId(1));
        let mut link = random_queued_link(&mut rng, true);
        link.queue = rng.range(1, 12) as usize;
        net.set_link(src, dst, link);
        let mut now = SimTime(0);
        let mut saw_drop = false;
        for _ in 0..200 {
            // Mostly bursts (same instant) with occasional pauses, to
            // exercise both the full-queue and drained states.
            if rng.chance(0.15) {
                now = SimTime(now.0 + rng.below(5_000_000));
            }
            let size = rng.range(1, 32 * 1024);
            match net.offer(src, dst, now, &mut rng, size, Duration::ZERO) {
                SendOutcome::Queued { depth, .. } => {
                    assert!(
                        depth as usize <= link.queue,
                        "seed {seed}: depth {depth} > capacity {}",
                        link.queue
                    );
                }
                SendOutcome::Lost(DropReason::QueueFull) => saw_drop = true,
                other => panic!("seed {seed}: unexpected {other:?}"),
            }
            assert!(
                net.queue_occupancy(src, dst, now) <= link.queue,
                "seed {seed}: occupancy exceeded capacity"
            );
        }
        assert!(saw_drop, "seed {seed}: burst flow never filled the queue");
    }
}

#[test]
fn zero_load_latency_is_transmission_plus_propagation() {
    for seed in 0..CASES {
        let mut rng = SimRng::from_seed(0x3000 + seed);
        let mut net = Network::new(NetConfig::default());
        let (src, dst) = (ActorId(0), ActorId(1));
        let mut link = random_queued_link(&mut rng, true);
        link.jitter = Duration::ZERO;
        net.set_link(src, dst, link);
        // Offers spaced far enough apart that the link is always idle.
        let mut now = SimTime(0);
        for _ in 0..20 {
            now = SimTime(now.0 + 60_000_000_000);
            let size = rng.below(4096);
            let service = (size as u128 * 1_000_000_000).div_ceil(link.bandwidth as u128) as u64;
            match net.offer(src, dst, now, &mut rng, size, Duration::ZERO) {
                SendOutcome::Queued { at, depth, waited } => {
                    assert_eq!(
                        at,
                        SimTime(now.0 + service + link.latency.0),
                        "seed {seed}: idle-link latency must be service + propagation"
                    );
                    assert_eq!(waited, Duration::ZERO, "seed {seed}");
                    assert_eq!(depth, 1, "seed {seed}");
                }
                other => panic!("seed {seed}: unexpected {other:?}"),
            }
        }
        // The degenerate case: zero bytes ⇒ delivery exactly one
        // propagation delay after the send.
        now = SimTime(now.0 + 60_000_000_000);
        match net.offer(src, dst, now, &mut rng, 0, Duration::ZERO) {
            SendOutcome::Queued { at, .. } => {
                assert_eq!(at, SimTime(now.0 + link.latency.0), "seed {seed}");
            }
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
    }
}

/// A sender that pushes `total` sized messages at its peer as fast as its
/// tick allows; the peer just counts.
struct Blaster {
    peer: ActorId,
    total: u32,
    sent: u32,
    size: u64,
}

// The payload value exists to give each send a distinct Debug rendering in
// the trace; nothing downcasts it.
#[derive(Debug)]
struct Blast(#[allow(dead_code)] u32);

impl Actor for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(Duration::micros(50), 0);
    }
    fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
    fn on_timer(&mut self, _t: ph_sim::TimerId, _tag: u64, ctx: &mut Ctx) {
        if self.sent < self.total {
            ctx.send_sized(self.peer, Blast(self.sent), self.size);
            self.sent += 1;
            ctx.set_timer(Duration::micros(50), 0);
        }
    }
}

struct Sink;
impl Actor for Sink {
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
}

/// World-level conservation: over a congested run cut off mid-flight,
/// every `Blast` send is delivered, dropped, or still in flight at the
/// horizon — no message is double-counted or vanishes.
#[test]
fn world_conserves_messages_under_congestion() {
    for seed in 0..CASES {
        let mut rng = SimRng::from_seed(0x4000 + seed);
        let mut w = World::new(WorldConfig::default(), seed);
        let sink = w.spawn("sink", Sink);
        let blaster = w.spawn(
            "blaster",
            Blaster {
                peer: sink,
                total: 200,
                sent: 0,
                size: 8 * 1024,
            },
        );
        w.net_mut().set_link(
            blaster,
            sink,
            LinkConfig {
                jitter: Duration::ZERO,
                bandwidth: rng.range(100_000, 2_000_000),
                queue: rng.range(2, 20) as usize,
                ..LinkConfig::default()
            },
        );
        // Stop mid-transfer so some messages are still in flight.
        w.run_for(Duration::millis(1 + rng.below(12)));
        let is_blast = |kind: &str| kind == "Blast";
        let sent = w.trace().count(
            |e| matches!(&e.kind, TraceEventKind::MessageSent { kind, .. } if is_blast(kind)),
        );
        let delivered = w.trace().count(
            |e| matches!(&e.kind, TraceEventKind::MessageDelivered { kind, .. } if is_blast(kind)),
        );
        let dropped = w.trace().count(|e| {
            matches!(
                &e.kind,
                TraceEventKind::MessageDropped {
                    kind,
                    reason: DropReason::QueueFull,
                    ..
                } if is_blast(kind)
            )
        });
        let in_flight = w.net().queue_occupancy(blaster, sink, w.now());
        assert!(sent > 0, "seed {seed}: no traffic generated");
        assert!(
            delivered + dropped <= sent,
            "seed {seed}: {delivered}+{dropped} > {sent}"
        );
        // In-flight covers both queued-not-yet-departed and
        // departed-not-yet-delivered (propagation), so it is a lower bound
        // on the sent-minus-settled gap.
        assert!(
            sent - delivered - dropped >= in_flight,
            "seed {seed}: sent {sent} != delivered {delivered} + dropped {dropped} + in-flight {in_flight}"
        );
    }
}

/// Determinism: the same seed and topology produce identical outcomes
/// across two independently-built networks.
#[test]
fn queued_offer_sequences_are_deterministic() {
    for seed in 0..CASES {
        let run = |seed: u64| {
            let mut rng = SimRng::from_seed(0x5000 + seed);
            let mut net = Network::new(NetConfig::default());
            let (src, dst) = (ActorId(0), ActorId(1));
            net.set_link(src, dst, random_queued_link(&mut rng, true));
            random_flow(&mut net, &mut rng, src, dst, 100)
        };
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
}
