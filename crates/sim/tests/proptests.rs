//! Randomized-but-deterministic tests on the simulator's core guarantees:
//! determinism, FIFO delivery, and crash/restart hygiene, under arbitrary
//! topologies and fault schedules.
//!
//! Cases are generated from a fixed-seed [`SimRng`] rather than an external
//! property-testing framework, so the exact case set is pinned forever and
//! the suite runs with zero third-party dependencies.

use ph_sim::{
    Actor, ActorId, AnyMsg, Ctx, Duration, Interner, SimRng, SimTime, TraceEventKind, World,
    WorldConfig,
};

/// A chatty actor: every tick it messages a fixed peer with a sequence
/// number; it records (sender, seq) pairs it receives.
struct Chatter {
    peer: Option<ActorId>,
    seq: u64,
    received: Vec<(ActorId, u64)>,
}

#[derive(Debug)]
struct Chat(u64);

impl Actor for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(Duration::millis(5), 0);
    }
    fn on_message(&mut self, from: ActorId, msg: AnyMsg, _ctx: &mut Ctx) {
        if let Some(Chat(n)) = msg.downcast_ref::<Chat>() {
            self.received.push((from, *n));
        }
    }
    fn on_timer(&mut self, _t: ph_sim::TimerId, _tag: u64, ctx: &mut Ctx) {
        if let Some(p) = self.peer {
            ctx.send(p, Chat(self.seq));
            self.seq += 1;
        }
        ctx.set_timer(Duration::millis(5), 0);
    }
    fn on_restart(&mut self, ctx: &mut Ctx) {
        self.seq = 0;
        self.received.clear();
        self.on_start(ctx);
    }
}

#[derive(Debug, Clone)]
enum Fault {
    Crash {
        victim: u8,
        at_ms: u16,
        down_ms: u16,
    },
    Partition {
        a: u8,
        b: u8,
    },
}

/// Draws a random fault from the same distribution the proptest version used.
fn gen_fault(rng: &mut SimRng) -> Fault {
    if rng.below(2) == 0 {
        Fault::Crash {
            victim: rng.below(4) as u8,
            at_ms: rng.range(1, 400) as u16,
            down_ms: rng.range(1, 200) as u16,
        }
    } else {
        Fault::Partition {
            a: rng.below(4) as u8,
            b: rng.below(4) as u8,
        }
    }
}

/// Draws a full random case: a world seed and a fault schedule.
fn gen_case(rng: &mut SimRng) -> (u64, Vec<Fault>) {
    let seed = rng.below(1000);
    let n = rng.below(6) as usize;
    let faults = (0..n).map(|_| gen_fault(rng)).collect();
    (seed, faults)
}

/// Builds a 4-actor ring and applies the fault schedule; returns the world.
fn run_ring(seed: u64, faults: &[Fault]) -> World {
    let mut world = World::new(WorldConfig::default(), seed);
    let ids: Vec<ActorId> = (0..4)
        .map(|i| {
            world.spawn(
                &format!("chatter-{i}"),
                Chatter {
                    peer: None,
                    seq: 0,
                    received: Vec::new(),
                },
            )
        })
        .collect();
    // Close the ring (peer of i is i+1).
    for i in 0..4 {
        let peer = ids[(i + 1) % 4];
        world.invoke::<Chatter, _>(ids[i], move |c, _| c.peer = Some(peer));
    }
    for f in faults {
        match *f {
            Fault::Crash {
                victim,
                at_ms,
                down_ms,
            } => {
                let v = ids[victim as usize % 4];
                world.schedule_crash(v, SimTime(Duration::millis(at_ms as u64).as_nanos()));
                world.schedule_restart(
                    v,
                    SimTime(Duration::millis(at_ms as u64 + down_ms as u64).as_nanos()),
                );
            }
            Fault::Partition { a, b } => {
                let (x, y) = (ids[a as usize % 4], ids[b as usize % 4]);
                if x != y {
                    world.net_mut().block(x, y);
                }
            }
        }
    }
    world.run_until(SimTime(Duration::millis(500).as_nanos()));
    world
}

/// The headline guarantee: identical inputs produce identical traces,
/// regardless of fault schedules.
#[test]
fn runs_are_deterministic() {
    let mut rng = SimRng::from_seed(0xD0);
    for _ in 0..48 {
        let (seed, faults) = gen_case(&mut rng);
        let a = run_ring(seed, &faults).trace().digest();
        let b = run_ring(seed, &faults).trace().digest();
        assert_eq!(a, b, "seed {seed} faults {faults:?}");
    }
}

/// Per-link FIFO: sequence numbers received from any single incarnation
/// of a sender are strictly increasing.
#[test]
fn links_deliver_in_order() {
    let mut rng = SimRng::from_seed(0xF1F0);
    for _ in 0..48 {
        let (seed, faults) = gen_case(&mut rng);
        let world = run_ring(seed, &faults);
        for id in world.actor_ids() {
            if let Some(c) = world.actor_ref::<Chatter>(id) {
                // Split the stream at sender restarts (seq resets to 0).
                let mut last: std::collections::BTreeMap<ActorId, u64> =
                    std::collections::BTreeMap::new();
                for &(from, n) in &c.received {
                    if let Some(&prev) = last.get(&from) {
                        assert!(
                            n > prev || n == 0,
                            "link {from}->{id} reordered: {prev} then {n}"
                        );
                    }
                    last.insert(from, n);
                }
            }
        }
    }
}

/// Trace bookkeeping: every delivered message was sent, and no message
/// is both delivered and dropped.
#[test]
fn trace_message_lifecycle_is_consistent() {
    let mut rng = SimRng::from_seed(0x11FE);
    for _ in 0..48 {
        let (seed, faults) = gen_case(&mut rng);
        let world = run_ring(seed, &faults);
        let mut sent = std::collections::BTreeSet::new();
        let mut delivered = std::collections::BTreeSet::new();
        let mut dropped = std::collections::BTreeSet::new();
        for e in world.trace().iter() {
            match &e.kind {
                TraceEventKind::MessageSent { id, .. } => {
                    assert!(sent.insert(*id), "duplicate send id");
                }
                TraceEventKind::MessageDelivered { id, .. } => {
                    assert!(sent.contains(id), "delivery without send");
                    assert!(delivered.insert(*id), "double delivery");
                }
                TraceEventKind::MessageDropped { id, .. } => {
                    assert!(sent.contains(id), "drop without send");
                    dropped.insert(*id);
                }
                _ => {}
            }
        }
        assert!(delivered.is_disjoint(&dropped), "delivered AND dropped");
    }
}

/// Draws a random lowercase string of length 0..10.
fn gen_string(rng: &mut SimRng) -> String {
    let len = rng.below(10) as usize;
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

/// Interner properties under random workloads: resolution round-trips,
/// symbol assignment is a pure function of the intern sequence, and ids are
/// dense in first-occurrence order.
#[test]
fn interner_round_trips_and_is_insertion_order_deterministic() {
    let mut rng = SimRng::from_seed(0x1A7E);
    for _ in 0..64 {
        // A pool with deliberate duplicates, interned in a random order.
        let pool: Vec<String> = (0..rng.range(1, 24))
            .map(|_| gen_string(&mut rng))
            .collect();
        let seq: Vec<&String> = (0..rng.range(1, 200))
            .map(|_| &pool[rng.below(pool.len() as u64) as usize])
            .collect();

        let mut a = Interner::new();
        let mut b = Interner::new();
        let syms_a: Vec<_> = seq.iter().map(|s| a.intern(s)).collect();
        let syms_b: Vec<_> = seq.iter().map(|s| b.intern(s)).collect();
        assert_eq!(syms_a, syms_b, "sym assignment must be deterministic");

        for (s, sym) in seq.iter().zip(&syms_a) {
            assert_eq!(a.resolve(*sym), s.as_str(), "resolution must round-trip");
            assert_eq!(a.lookup(s), Some(*sym));
            // Re-interning is idempotent and intern_name shares the
            // original allocation.
            assert_eq!(a.intern(s), *sym);
            let n1 = a.intern_name(s);
            let n2 = a.intern_name(s);
            assert_eq!(n1, n2);
            assert_eq!(n1.as_str().as_ptr(), n2.as_str().as_ptr());
        }

        // Ids are dense and ordered by first occurrence.
        let mut first_occurrence: Vec<&str> = Vec::new();
        for s in &seq {
            if !first_occurrence.contains(&s.as_str()) {
                first_occurrence.push(s);
            }
        }
        assert_eq!(a.len(), first_occurrence.len());
        let iter_order: Vec<&str> = a.iter().map(|(_, s)| s).collect();
        assert_eq!(iter_order, first_occurrence);
        for (i, (sym, _)) in a.iter().enumerate() {
            assert_eq!(sym.id() as usize, i, "ids must be dense");
        }
    }
}

/// Crashed actors receive nothing while down; restarted actors resume.
#[test]
fn crash_windows_are_silent() {
    let mut rng = SimRng::from_seed(0xC1A5);
    for _ in 0..48 {
        let victim = rng.below(4) as u8;
        let at_ms = rng.range(50, 200) as u16;
        let down_ms = rng.range(50, 150) as u16;
        let faults = [Fault::Crash {
            victim,
            at_ms,
            down_ms,
        }];
        let world = run_ring(7, &faults);
        let ids: Vec<ActorId> = world.actor_ids().collect();
        let v = ids[victim as usize % 4];
        let start = Duration::millis(at_ms as u64).as_nanos();
        let end = Duration::millis(at_ms as u64 + down_ms as u64).as_nanos();
        for e in world.trace().iter() {
            if let TraceEventKind::MessageDelivered { dst, .. } = &e.kind {
                if *dst == v {
                    assert!(
                        e.at.0 < start || e.at.0 >= end,
                        "delivery to crashed actor at {}",
                        e.at
                    );
                }
            }
        }
        assert_eq!(world.incarnation(v), 1);
        assert!(!world.is_crashed(v));
    }
}
