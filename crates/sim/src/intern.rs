//! Deterministic string interning for the sim hot path.
//!
//! Trace events and metric keys repeat a small set of strings millions of
//! times per run (actor names, message kinds, annotation labels, metric
//! names). Interning replaces the per-event `String` allocation with either
//! a [`Sym`] (a dense `u32` id, used as metric map keys) or a [`Name`] (a
//! shared, immutable string, used in trace events where the public API
//! stays string-shaped). Resolution back to text happens only at
//! export/render time.
//!
//! Determinism: [`Sym`] ids are assigned in first-intern order, which is a
//! pure function of the simulation schedule — no hash-seed, allocator, or
//! wall-clock dependence — so two same-seed runs intern identically.
//! [`Name`] prints (`Debug`/`Display`) and compares exactly like the string
//! it wraps, which keeps trace digests and JSON exports byte-identical to
//! the pre-interning representation.

use std::rc::Rc;

/// An interned string: clones are reference-count bumps, comparisons and
/// rendering behave exactly like [`str`].
#[derive(Clone)]
pub struct Name(Rc<str>);

impl Name {
    /// The string contents.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name(Rc::from(s))
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name(Rc::from(s))
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

// Debug must render byte-identically to `String`'s Debug: trace digests
// hash `format!("{:?}")` of event kinds, and the interning refactor must
// not change a single digest.
impl std::fmt::Debug for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Name) -> bool {
        // Interned names of equal contents usually share the allocation.
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Name) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Name {
    fn cmp(&self, other: &Name) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}
impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}
impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}
impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}
impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

/// A dense interned-string id; `Sym`s from one [`Interner`] compare as
/// cheaply as integers and are assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense id (0-based insertion index).
    pub fn id(self) -> u32 {
        self.0
    }
}

const INITIAL_TABLE: usize = 64;

/// FNV-1a hash of `s`: the seed-independent, allocation-free string hash
/// the interner's open-addressing table uses. Public so other layers can
/// partition key spaces (e.g. the apiserver's sharded watch cache) with
/// the exact same deterministic placement the interner uses.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An insertion-ordered, seed-independent string interner.
///
/// `intern` is amortized O(1) (FNV-1a + open addressing); `resolve` is an
/// array index. The id space is dense: the nth distinct string interned
/// gets id `n-1`, making [`Sym`] usable as a direct vector index.
#[derive(Debug, Clone)]
pub struct Interner {
    names: Vec<Name>,
    /// Open-addressing slots holding `index + 1`; 0 marks an empty slot.
    /// Length is always a power of two.
    table: Vec<u32>,
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner {
            names: Vec::new(),
            table: vec![0; INITIAL_TABLE],
        }
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `s`, returning its dense id (existing id if seen before).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(sym) = self.find(s) {
            return sym;
        }
        let idx = self.names.len() as u32;
        self.names.push(Name::from(s));
        // Grow at 7/8 load before inserting the new slot.
        if (self.names.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        } else {
            self.insert_slot(s, idx);
        }
        Sym(idx)
    }

    /// Interns `s` and returns the shared [`Name`] (one allocation per
    /// distinct string, ever).
    pub fn intern_name(&mut self, s: &str) -> Name {
        let sym = self.intern(s);
        self.names[sym.0 as usize].clone()
    }

    /// The id of `s` if it has been interned.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.find(s)
    }

    /// The string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (id out of range).
    pub fn resolve(&self, sym: Sym) -> &str {
        self.names[sym.0 as usize].as_str()
    }

    /// The shared [`Name`] for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (id out of range).
    pub fn name(&self, sym: Sym) -> &Name {
        &self.names[sym.0 as usize]
    }

    /// Iterates `(Sym, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }

    fn find(&self, s: &str) -> Option<Sym> {
        let mask = self.table.len() - 1;
        let mut i = (fnv1a(s) as usize) & mask;
        loop {
            match self.table[i] {
                0 => return None,
                e => {
                    let idx = (e - 1) as usize;
                    if self.names[idx].as_str() == s {
                        return Some(Sym(idx as u32));
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn insert_slot(&mut self, s: &str, idx: u32) {
        let mask = self.table.len() - 1;
        let mut i = (fnv1a(s) as usize) & mask;
        while self.table[i] != 0 {
            i = (i + 1) & mask;
        }
        self.table[i] = idx + 1;
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(INITIAL_TABLE);
        self.table.clear();
        self.table.resize(new_len, 0);
        let mask = new_len - 1;
        for (idx, name) in self.names.iter().enumerate() {
            let mut i = (fnv1a(name.as_str()) as usize) & mask;
            while self.table[i] != 0 {
                i = (i + 1) & mask;
            }
            self.table[i] = idx as u32 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_insertion_ordered() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        let a2 = it.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(it.resolve(a), "alpha");
        assert_eq!(it.resolve(b), "beta");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn lookup_without_insert() {
        let mut it = Interner::new();
        assert!(it.lookup("x").is_none());
        let s = it.intern("x");
        assert_eq!(it.lookup("x"), Some(s));
        assert!(it.lookup("y").is_none());
    }

    #[test]
    fn growth_preserves_ids() {
        let mut it = Interner::new();
        let syms: Vec<Sym> = (0..500).map(|i| it.intern(&format!("s{i}"))).collect();
        for (i, sym) in syms.iter().enumerate() {
            assert_eq!(sym.id(), i as u32);
            assert_eq!(it.resolve(*sym), format!("s{i}"));
            assert_eq!(it.lookup(&format!("s{i}")), Some(*sym));
        }
    }

    #[test]
    fn name_prints_like_string() {
        let mut it = Interner::new();
        let n = it.intern_name("wa\"tch\n");
        let s = String::from("wa\"tch\n");
        assert_eq!(format!("{n:?}"), format!("{s:?}"));
        assert_eq!(format!("{n}"), s);
    }

    #[test]
    // The owned comparisons are the point: each line exercises one of the
    // cross-type PartialEq/Ord impls above.
    #[allow(clippy::cmp_owned)]
    fn name_compares_with_every_string_shape() {
        let n = Name::from("k");
        assert!(n == *"k");
        assert!(n == "k");
        assert!("k" == n);
        assert!(n == String::from("k"));
        assert!(String::from("k") == n);
        assert!(n != "j");
        assert!(Name::from("a") < Name::from("b"));
    }

    #[test]
    fn interned_names_share_the_allocation() {
        let mut it = Interner::new();
        let a = it.intern_name("shared");
        let b = it.intern_name("shared");
        assert!(std::rc::Rc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn iter_returns_insertion_order() {
        let mut it = Interner::new();
        it.intern("b");
        it.intern("a");
        let all: Vec<(u32, String)> = it.iter().map(|(s, n)| (s.id(), n.to_string())).collect();
        assert_eq!(all, vec![(0, "b".to_string()), (1, "a".to_string())]);
    }
}
