//! Trace exporters.
//!
//! Two serializations of a [`Trace`], both hand-rolled, deterministic and
//! dependency-free:
//!
//! * [`trace_to_jsonl`] — one structured JSON object per line, for grep/jq
//!   pipelines and archival;
//! * [`trace_to_chrome`] — the Chrome `trace_event` array format, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Each
//!   actor becomes a named thread; spans become `B`/`E` duration events,
//!   everything else becomes an instant event.
//!
//! Timestamps are the simulation's logical nanoseconds (Chrome wants
//! microseconds, so `ts` is rendered as `ns/1000` with three decimals); no
//! wall-clock time is involved, so exports are byte-identical across
//! same-seed runs.

use std::collections::BTreeMap;

use crate::ids::ActorId;
use crate::trace::{json_string, Trace, TraceEventKind};

/// Renders the trace as JSON Lines: one event object per line, with
/// structured per-kind fields (`type`, `seq`, `at_ns`, then the event's own
/// fields).
pub fn trace_to_jsonl(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 96);
    for e in trace.iter() {
        out.push_str(&format!("{{\"seq\":{},\"at_ns\":{},", e.seq, e.at.0));
        match &e.kind {
            TraceEventKind::Spawned { actor, name } => {
                out.push_str(&format!(
                    "\"type\":\"spawned\",\"actor\":{},\"name\":{}",
                    actor.0,
                    json_string(name)
                ));
            }
            TraceEventKind::MessageSent { id, src, dst, kind } => {
                out.push_str(&format!(
                    "\"type\":\"sent\",\"id\":{},\"src\":{},\"dst\":{},\"kind\":{}",
                    id.0,
                    src.0,
                    dst.0,
                    json_string(kind)
                ));
            }
            TraceEventKind::MessageDelivered { id, src, dst, kind } => {
                out.push_str(&format!(
                    "\"type\":\"delivered\",\"id\":{},\"src\":{},\"dst\":{},\"kind\":{}",
                    id.0,
                    src.0,
                    dst.0,
                    json_string(kind)
                ));
            }
            TraceEventKind::MessageDropped {
                id,
                src,
                dst,
                kind,
                reason,
            } => {
                out.push_str(&format!(
                    "\"type\":\"dropped\",\"id\":{},\"src\":{},\"dst\":{},\"kind\":{},\"reason\":{}",
                    id.0,
                    src.0,
                    dst.0,
                    json_string(kind),
                    json_string(&format!("{reason:?}"))
                ));
            }
            TraceEventKind::MessageHeld { id, src, dst, kind } => {
                out.push_str(&format!(
                    "\"type\":\"held\",\"id\":{},\"src\":{},\"dst\":{},\"kind\":{}",
                    id.0,
                    src.0,
                    dst.0,
                    json_string(kind)
                ));
            }
            TraceEventKind::MessageDelayed {
                id,
                src,
                dst,
                kind,
                by,
            } => {
                out.push_str(&format!(
                    "\"type\":\"delayed\",\"id\":{},\"src\":{},\"dst\":{},\"kind\":{},\"by_ns\":{}",
                    id.0,
                    src.0,
                    dst.0,
                    json_string(kind),
                    by.0
                ));
            }
            TraceEventKind::MessageQueued {
                id,
                src,
                dst,
                kind,
                depth,
                waited,
            } => {
                out.push_str(&format!(
                    "\"type\":\"queued\",\"id\":{},\"src\":{},\"dst\":{},\"kind\":{},\"depth\":{},\"waited_ns\":{}",
                    id.0,
                    src.0,
                    dst.0,
                    json_string(kind),
                    depth,
                    waited.0
                ));
            }
            TraceEventKind::MessageReleased { id } => {
                out.push_str(&format!("\"type\":\"released\",\"id\":{}", id.0));
            }
            TraceEventKind::TimerSet {
                actor,
                timer,
                tag,
                fire_at,
            } => {
                out.push_str(&format!(
                    "\"type\":\"timer_set\",\"actor\":{},\"timer\":{},\"tag\":{},\"fire_at_ns\":{}",
                    actor.0, timer.0, tag, fire_at.0
                ));
            }
            TraceEventKind::TimerFired { actor, timer, tag } => {
                out.push_str(&format!(
                    "\"type\":\"timer_fired\",\"actor\":{},\"timer\":{},\"tag\":{}",
                    actor.0, timer.0, tag
                ));
            }
            TraceEventKind::Crashed { actor } => {
                out.push_str(&format!("\"type\":\"crashed\",\"actor\":{}", actor.0));
            }
            TraceEventKind::Restarted { actor } => {
                out.push_str(&format!("\"type\":\"restarted\",\"actor\":{}", actor.0));
            }
            TraceEventKind::Annotation { actor, label, data } => {
                out.push_str(&format!(
                    "\"type\":\"annotation\",\"actor\":{},\"label\":{},\"data\":{}",
                    actor.0,
                    json_string(label),
                    json_string(data)
                ));
            }
            TraceEventKind::SpanBegin {
                actor,
                label,
                detail,
            } => {
                out.push_str(&format!(
                    "\"type\":\"span_begin\",\"actor\":{},\"label\":{},\"detail\":{}",
                    actor.0,
                    json_string(label),
                    json_string(detail)
                ));
            }
            TraceEventKind::SpanEnd { actor, label } => {
                out.push_str(&format!(
                    "\"type\":\"span_end\",\"actor\":{},\"label\":{}",
                    actor.0,
                    json_string(label)
                ));
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Formats logical nanoseconds as Chrome's microsecond `ts` with fixed
/// 3-decimal precision (keeps output byte-stable, no float formatting).
fn chrome_ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Names of every spawned actor, from the trace itself.
fn actor_names(trace: &Trace) -> BTreeMap<ActorId, crate::intern::Name> {
    let mut names = BTreeMap::new();
    for e in trace.iter() {
        if let TraceEventKind::Spawned { actor, name } = &e.kind {
            names.insert(*actor, name.clone());
        }
    }
    names
}

/// Renders the trace in the Chrome `trace_event` JSON object format
/// (`{"traceEvents": [...]}`), suitable for Perfetto. The export is
/// self-contained: thread names come from the trace's `Spawned` events.
///
/// Every send→deliver message pair additionally emits a flow-event pair
/// (`"ph":"s"` at the send, `"ph":"f","bp":"e"` at the delivery, bound by
/// the message id) so Perfetto draws causality arrows between the two
/// timelines — the visual counterpart of the happens-before edges
/// `ph-core::causality` derives from the same trace.
pub fn trace_to_chrome(trace: &Trace) -> String {
    // Flow starts with no matching finish render as dangling arrows, so
    // only messages that were actually delivered get a flow pair.
    let delivered: std::collections::BTreeSet<u64> = trace
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::MessageDelivered { id, .. } => Some(id.0),
            _ => None,
        })
        .collect();
    let mut events: Vec<String> = Vec::with_capacity(trace.len() + 8);
    for (actor, name) in actor_names(trace) {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            actor.0,
            json_string(&name)
        ));
    }
    for e in trace.iter() {
        let ts = chrome_ts(e.at.0);
        let ev = match &e.kind {
            TraceEventKind::SpanBegin {
                actor,
                label,
                detail,
            } => format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"name\":{},\"args\":{{\"detail\":{}}}}}",
                actor.0,
                json_string(label),
                json_string(detail)
            ),
            TraceEventKind::SpanEnd { actor, label } => format!(
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"name\":{}}}",
                actor.0,
                json_string(label)
            ),
            TraceEventKind::MessageSent { id, src, dst, kind } => instant(
                src.0,
                &ts,
                &format!("send {kind}"),
                &format!("{{\"id\":{},\"dst\":{}}}", id.0, dst.0),
            ),
            TraceEventKind::MessageDelivered { id, src, dst, kind } => instant(
                dst.0,
                &ts,
                &format!("recv {kind}"),
                &format!("{{\"id\":{},\"src\":{}}}", id.0, src.0),
            ),
            TraceEventKind::MessageDropped {
                id,
                src,
                dst,
                kind,
                reason,
            } => instant(
                dst.0,
                &ts,
                &format!("drop {kind}"),
                &format!(
                    "{{\"id\":{},\"src\":{},\"reason\":{}}}",
                    id.0,
                    src.0,
                    json_string(&format!("{reason:?}"))
                ),
            ),
            TraceEventKind::MessageDelayed {
                id,
                src,
                dst,
                kind,
                by,
            } => instant(
                dst.0,
                &ts,
                &format!("delay {kind}"),
                &format!("{{\"id\":{},\"src\":{},\"by_ns\":{}}}", id.0, src.0, by.0),
            ),
            TraceEventKind::MessageQueued {
                id,
                src,
                dst,
                kind,
                depth,
                waited,
            } => instant(
                src.0,
                &ts,
                &format!("queue {kind}"),
                &format!(
                    "{{\"id\":{},\"dst\":{},\"depth\":{},\"waited_ns\":{}}}",
                    id.0, dst.0, depth, waited.0
                ),
            ),
            TraceEventKind::Crashed { actor } => instant(actor.0, &ts, "crash", "{}"),
            TraceEventKind::Restarted { actor } => instant(actor.0, &ts, "restart", "{}"),
            TraceEventKind::Annotation { actor, label, data } => instant(
                actor.0,
                &ts,
                label,
                &format!("{{\"data\":{}}}", json_string(data)),
            ),
            // Spawn/timer/hold bookkeeping would drown the timeline; the
            // JSONL exporter carries the complete record.
            _ => continue,
        };
        events.push(ev);
        match &e.kind {
            TraceEventKind::MessageSent { id, src, .. } if delivered.contains(&id.0) => {
                events.push(flow("s", src.0, &ts, id.0));
            }
            TraceEventKind::MessageDelivered { id, dst, .. } => {
                events.push(flow("f", dst.0, &ts, id.0));
            }
            _ => {}
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

fn instant(tid: u32, ts: &str, name: &str, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":{},\"args\":{args}}}",
        json_string(name)
    )
}

/// One half of a flow-event pair binding a send to its delivery. `bp:"e"`
/// on the finishing half attaches the arrowhead to the enclosing event
/// rather than the next slice, which is what instants need.
fn flow(ph: &str, tid: u32, ts: &str, msg_id: u64) -> String {
    let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
    format!(
        "{{\"ph\":\"{ph}\"{bp},\"cat\":\"msg\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":\"msg\",\"id\":{msg_id}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, Ctx};
    use crate::ids::ActorId;
    use crate::msg::AnyMsg;
    use crate::time::Duration;
    use crate::world::{World, WorldConfig};

    struct Spanner;
    impl Actor for Spanner {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Duration::millis(1), 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
        fn on_timer(&mut self, _t: crate::ids::TimerId, _tag: u64, ctx: &mut Ctx) {
            ctx.span_begin("work", "unit");
            ctx.counter_inc("ticks");
            ctx.span_end("work");
        }
    }

    fn spanned_world() -> World {
        let mut w = World::new(WorldConfig::default(), 5);
        w.spawn("spanner", Spanner);
        w.run_for(Duration::millis(2));
        w
    }

    #[test]
    fn jsonl_lines_are_objects_covering_every_event() {
        let w = spanned_world();
        let jsonl = trace_to_jsonl(w.trace());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), w.trace().len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"type\":\"span_begin\""));
        assert!(jsonl.contains("\"type\":\"span_end\""));
    }

    #[test]
    fn chrome_export_pairs_spans_and_names_threads() {
        let w = spanned_world();
        let chrome = trace_to_chrome(w.trace());
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.contains("\"name\":\"spanner\""));
        assert_eq!(
            chrome.matches("\"ph\":\"B\"").count(),
            chrome.matches("\"ph\":\"E\"").count(),
            "every B needs an E"
        );
    }

    #[test]
    fn chrome_ts_renders_microseconds_with_nanosecond_fraction() {
        assert_eq!(chrome_ts(0), "0.000");
        assert_eq!(chrome_ts(1_500), "1.500");
        assert_eq!(chrome_ts(2_000_007), "2000.007");
    }

    struct Pinger {
        peer: ActorId,
    }
    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.send(self.peer, 1u32);
        }
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
    }

    struct Sink;
    impl Actor for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
    }

    #[test]
    fn chrome_flow_events_pair_every_delivery() {
        let mut w = World::new(WorldConfig::default(), 5);
        let sink = w.spawn("sink", Sink);
        w.spawn("pinger", Pinger { peer: sink });
        w.run_for(Duration::millis(5));
        let chrome = trace_to_chrome(w.trace());
        let starts = chrome.matches("\"ph\":\"s\"").count();
        let finishes = chrome.matches("\"ph\":\"f\"").count();
        assert!(starts > 0, "no flow starts emitted");
        assert_eq!(starts, finishes, "every flow start needs a finish");
        assert_eq!(finishes, chrome.matches("\"bp\":\"e\"").count());
    }

    #[test]
    fn delayed_messages_appear_in_both_exports() {
        use crate::intercept::Verdict;
        use crate::msg::Envelope;
        use crate::time::SimTime;
        let mut w = World::new(WorldConfig::default(), 6);
        let sink = w.spawn("sink", Sink);
        w.set_interceptor(move |env: &Envelope, _t: SimTime| {
            if env.dst == sink {
                Verdict::Delay(Duration::millis(3))
            } else {
                Verdict::Pass
            }
        });
        w.spawn("pinger", Pinger { peer: sink });
        w.run_for(Duration::millis(10));
        let jsonl = trace_to_jsonl(w.trace());
        assert!(jsonl.contains("\"type\":\"delayed\""), "{jsonl}");
        assert!(jsonl.contains("\"by_ns\":3000000"), "{jsonl}");
        let chrome = trace_to_chrome(w.trace());
        assert!(chrome.contains("delay u32"), "{chrome}");
    }

    #[test]
    fn exports_are_deterministic() {
        let a = spanned_world();
        let b = spanned_world();
        assert_eq!(trace_to_jsonl(a.trace()), trace_to_jsonl(b.trace()));
        assert_eq!(trace_to_chrome(a.trace()), trace_to_chrome(b.trace()));
    }

    #[test]
    fn span_durations_land_in_histograms() {
        let w = spanned_world();
        let report = w.metrics_report();
        assert_eq!(report.counter("spanner", "ticks"), Some(1));
        let h = report
            .histogram("spanner", "work.ns")
            .expect("span histogram");
        assert_eq!(h.count, 1);
    }
}
