//! Deterministic, splittable randomness.
//!
//! All randomness in a simulation flows from one root seed. Each actor gets
//! its own [`SimRng`] derived from `(root seed, actor id)`, so adding an actor
//! or reordering unrelated draws does not perturb the streams of existing
//! actors — a property that keeps bug reproductions stable as scenarios grow.

/// A deterministic random number generator for one simulation component.
///
/// The generator is an in-repo xoshiro256++ — no external crates, so the
/// byte-for-byte output stream is pinned by this file alone and can never
/// shift underneath recorded traces when a dependency is upgraded.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// Mixes a 64-bit value (splitmix64 finalizer); used to derive child seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a raw seed.
    pub fn from_seed(seed: u64) -> SimRng {
        // Expand the seed into the full 256-bit state with splitmix64, as
        // the xoshiro authors recommend; a zero state is unreachable.
        let mut z = mix(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = mix(z.wrapping_add(0x9e37_79b9_7f4a_7c15));
            *slot = z;
        }
        SimRng { s }
    }

    /// Derives an independent child generator; children with distinct
    /// `stream` values have decorrelated output.
    pub fn derive(seed: u64, stream: u64) -> SimRng {
        SimRng::from_seed(mix(seed) ^ mix(stream.wrapping_mul(0xa076_1d64_78bd_642f)))
    }

    /// Uniform `u64` (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection: unbiased and deterministic.
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low < bound {
                let threshold = bound.wrapping_neg() % bound;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let mut a = SimRng::derive(7, 0);
        let mut b = SimRng::derive(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = SimRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn pick_and_shuffle_are_deterministic() {
        let mut a = SimRng::from_seed(11);
        let mut b = SimRng::from_seed(11);
        let items = [1, 2, 3, 4, 5];
        assert_eq!(a.pick(&items), b.pick(&items));
        assert_eq!(a.pick::<u32>(&[]), None);
        let mut va = items;
        let mut vb = items;
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb);
        let mut sorted = va;
        sorted.sort_unstable();
        assert_eq!(sorted, items, "shuffle permutes");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::from_seed(1).below(0);
    }
}
