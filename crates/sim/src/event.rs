//! The simulator's internal event queue entries.

use crate::ids::{ActorId, TimerId};
use crate::msg::Envelope;
use crate::time::SimTime;

/// A scheduled occurrence in the simulation.
#[derive(Debug)]
pub enum Event {
    /// Deliver a message to its destination.
    Deliver {
        /// The message.
        env: Envelope,
        /// The destination's incarnation when the send was scheduled; if the
        /// destination has restarted since, the message is dropped as stale
        /// (its transport connection died with the old incarnation).
        dst_incarnation: u32,
    },
    /// Fire a timer.
    TimerFire {
        /// Owning actor.
        actor: ActorId,
        /// Timer id.
        timer: TimerId,
        /// Caller-chosen tag.
        tag: u64,
    },
    /// Crash an actor.
    Crash {
        /// The actor to crash.
        actor: ActorId,
    },
    /// Restart a crashed actor.
    Restart {
        /// The actor to restart.
        actor: ActorId,
    },
}

/// Queue entry: the scheduled time, a tie-breaking sequence number
/// (insertion order, giving the run a total order) and the slab slot
/// holding the payload [`Event`].
///
/// The payload lives out-of-line in the world's event slab so the binary
/// heap sifts 24-byte keys instead of full envelopes — ordering is decided
/// by `(at, seq)` alone, so the indirection cannot affect the schedule.
#[derive(Debug)]
pub(crate) struct Scheduled {
    pub at: SimTime,
    pub seq: u64,
    pub slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(at: u64, seq: u64) -> Scheduled {
        Scheduled {
            at: SimTime(at),
            seq,
            slot: 0,
        }
    }

    #[test]
    fn orders_by_time_then_sequence() {
        assert!(sched(1, 5) < sched(2, 0));
        assert!(sched(2, 0) < sched(2, 1));
        assert_eq!(sched(3, 3), sched(3, 3));
    }

    #[test]
    fn binary_heap_pops_earliest_first() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = BinaryHeap::new();
        q.push(Reverse(sched(5, 0)));
        q.push(Reverse(sched(1, 1)));
        q.push(Reverse(sched(1, 0)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|Reverse(s)| (s.at.0, s.seq))
            .collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (5, 0)]);
    }
}
