//! # ph-sim — deterministic discrete-event simulation runtime
//!
//! This crate is the substrate on which the rest of the `partial-histories`
//! workspace runs. It provides a *deterministic* discrete-event simulator for
//! message-passing distributed systems:
//!
//! * a logical clock with nanosecond resolution ([`SimTime`]),
//! * an actor model ([`Actor`], [`Ctx`]) with timers, crashes and restarts,
//! * a message network ([`net`]) with per-link latency, loss, partitions and
//!   optional finite-bandwidth drop-tail queues (congestion-emergent delay),
//! * a pluggable message [`Interceptor`] — the hook used by `ph-core`'s
//!   perturbation strategies to delay, drop, hold and replay notifications,
//! * a structured [`Trace`] of everything that happened, from which
//!   `ph-core` derives happens-before relations and oracles derive verdicts,
//! * a deterministic [`metrics`] registry (counters, gauges, histograms,
//!   spans) snapshotted into ordered [`MetricsReport`]s, and [`export`]ers
//!   rendering traces as JSONL or Chrome `trace_event` JSON for Perfetto.
//!
//! Every simulation is a pure function of `(topology, workload, seed)`:
//! re-running a [`World`] with the same inputs produces the *identical* trace,
//! which is what makes every bug reproduction in this workspace replayable.
//!
//! ## Quick example
//!
//! ```
//! use ph_sim::{Actor, Ctx, World, WorldConfig, AnyMsg, ActorId, TimerId};
//!
//! struct Ping { peer: Option<ActorId>, got: u32 }
//!
//! #[derive(Debug)]
//! struct Hello(u32);
//!
//! impl Actor for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, Hello(1));
//!         }
//!     }
//!     fn on_message(&mut self, _from: ActorId, msg: AnyMsg, _ctx: &mut Ctx) {
//!         let hello: &Hello = msg.downcast_ref().unwrap();
//!         self.got += hello.0;
//!     }
//!     fn on_timer(&mut self, _t: TimerId, _tag: u64, _ctx: &mut Ctx) {}
//! }
//!
//! let mut world = World::new(WorldConfig::default(), 42);
//! let a = world.spawn("ping-a", Ping { peer: None, got: 0 });
//! let b = world.spawn("ping-b", Ping { peer: Some(a), got: 0 });
//! let _ = b;
//! world.run_until_quiescent(1_000_000);
//! let ping_a = world.actor_ref::<Ping>(a).unwrap();
//! assert_eq!(ping_a.got, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod event;
pub mod export;
pub mod ids;
pub mod intercept;
pub mod intern;
pub mod metrics;
pub mod msg;
pub mod net;
pub mod rng;
pub mod time;
pub mod trace;
pub mod world;

pub use actor::{Actor, Ctx};
pub use event::Event;
pub use export::{trace_to_chrome, trace_to_jsonl};
pub use ids::{ActorId, MsgId, TimerId};
pub use intercept::{Interceptor, NullInterceptor, Verdict};
pub use intern::{Interner, Name, Sym};
pub use metrics::{Histogram, MetricValue, Metrics, MetricsReport, DEFAULT_LATENCY_BOUNDS_NS};
pub use msg::{AnyMsg, Envelope};
pub use net::{LinkConfig, NetConfig, Network, Partition, SendOutcome};
pub use rng::SimRng;
pub use time::{Duration, SimTime};
pub use trace::{DropReason, Trace, TraceEvent, TraceEventKind};
pub use world::{World, WorldConfig};
