//! The message network: latency, loss, FIFO links, queues and partitions.
//!
//! Links are FIFO by default (modelling TCP-backed RPC/watch streams: a later
//! message never overtakes an earlier one on the same link), with configurable
//! base latency, jitter and loss. Partitions block links in both or one
//! direction; healing restores them. Partitions and loss are how the
//! *unintentional* part of a partial history arises — the `ph-core`
//! interceptors add the *targeted* part on top.
//!
//! Links may additionally model **finite capacity**: setting
//! [`LinkConfig::bandwidth`] gives the link a serial transmitter
//! (`bytes/sec`) fronted by a drop-tail queue of at most
//! [`LinkConfig::queue`] in-flight messages. Latency and loss then *emerge*
//! from occupancy — offered load past the transmitter's rate queues up (and
//! eventually tail-drops as [`DropReason::QueueFull`]) with no interceptor
//! involved. This is the §4.1 story: partial histories exist because the
//! store saturates, not only because someone injected a fault. Links with
//! `bandwidth == 0` (the default) keep the legacy infinite-capacity
//! behaviour bit-for-bit, including the RNG draw sequence, so existing
//! scenario digests are unchanged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ids::ActorId;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use crate::trace::DropReason;

/// Behaviour of a single directed link.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Minimum one-way delay.
    pub latency: Duration,
    /// Uniform extra delay in `[0, jitter]` added per message.
    pub jitter: Duration,
    /// Probability a message is silently lost.
    pub loss: f64,
    /// If `true` (the default), deliveries on this link never reorder.
    pub fifo: bool,
    /// Transmission rate in bytes/sec. `0` (the default) means infinite:
    /// the link behaves exactly as before queueing existed.
    pub bandwidth: u64,
    /// Drop-tail queue capacity in messages (counting the one being
    /// transmitted). `0` means unbounded. Only meaningful when
    /// `bandwidth > 0`.
    pub queue: usize,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            latency: Duration::micros(200),
            jitter: Duration::micros(100),
            loss: 0.0,
            fifo: true,
            bandwidth: 0,
            queue: 0,
        }
    }
}

/// Per-link transmitter state for finite-bandwidth links: when the serial
/// transmitter frees up and the departure time of every message still
/// occupying the queue (head included). Drained lazily against `now` on
/// each offer — no dequeue events are ever scheduled, which keeps the
/// queue model invisible to the event loop and trivially deterministic.
#[derive(Debug, Default)]
struct QueueState {
    busy_until: SimTime,
    departures: VecDeque<SimTime>,
}

/// Network-wide defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetConfig {
    /// Link behaviour used for every pair without an override.
    pub default_link: LinkConfig,
}

/// A handle to an active partition, listing exactly the directed pairs it
/// blocked, so healing removes precisely what the partition added.
#[derive(Debug, Clone)]
pub struct Partition {
    pub(crate) pairs: Vec<(ActorId, ActorId)>,
}

impl Partition {
    /// The directed pairs blocked by this partition.
    pub fn pairs(&self) -> &[(ActorId, ActorId)] {
        &self.pairs
    }
}

/// Outcome of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Deliver at the given time.
    DeliverAt(SimTime),
    /// Accepted by a finite-bandwidth link's queue; deliver at `at`. The
    /// extra fields let the world record congestion telemetry without
    /// re-deriving queue state.
    Queued {
        /// Delivery time (departure + propagation + jitter).
        at: SimTime,
        /// Queue occupancy right after this message was admitted
        /// (this message included).
        depth: u32,
        /// Time this message waited behind earlier traffic before its own
        /// transmission began. Zero on an idle link.
        waited: Duration,
    },
    /// Lost; the reason is recorded in the trace.
    Lost(DropReason),
}

/// The simulated network fabric.
#[derive(Debug)]
pub struct Network {
    default_link: LinkConfig,
    overrides: BTreeMap<(ActorId, ActorId), LinkConfig>,
    blocked: BTreeSet<(ActorId, ActorId)>,
    /// Last scheduled delivery per directed link, for FIFO clamping.
    fifo_horizon: BTreeMap<(ActorId, ActorId), SimTime>,
    /// Transmitter/queue state per finite-bandwidth directed link.
    queues: BTreeMap<(ActorId, ActorId), QueueState>,
}

impl Network {
    /// Creates a network with the given defaults.
    pub fn new(config: NetConfig) -> Network {
        Network {
            default_link: config.default_link,
            overrides: BTreeMap::new(),
            blocked: BTreeSet::new(),
            fifo_horizon: BTreeMap::new(),
            queues: BTreeMap::new(),
        }
    }

    /// The link configuration in effect for `src → dst`.
    pub fn link(&self, src: ActorId, dst: ActorId) -> LinkConfig {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Overrides the configuration of the directed link `src → dst`.
    pub fn set_link(&mut self, src: ActorId, dst: ActorId, cfg: LinkConfig) {
        self.overrides.insert((src, dst), cfg);
    }

    /// Overrides both directions between `a` and `b`.
    pub fn set_link_bidir(&mut self, a: ActorId, b: ActorId, cfg: LinkConfig) {
        self.set_link(a, b, cfg);
        self.set_link(b, a, cfg);
    }

    /// Blocks the directed link `src → dst` (messages are dropped as
    /// [`DropReason::Partitioned`]).
    pub fn block(&mut self, src: ActorId, dst: ActorId) {
        self.blocked.insert((src, dst));
    }

    /// Unblocks the directed link `src → dst`.
    pub fn unblock(&mut self, src: ActorId, dst: ActorId) {
        self.blocked.remove(&(src, dst));
    }

    /// `true` if `src → dst` is currently blocked.
    pub fn is_blocked(&self, src: ActorId, dst: ActorId) -> bool {
        self.blocked.contains(&(src, dst))
    }

    /// Partitions `group_a` from `group_b` in both directions, returning a
    /// handle that [`Network::heal`] accepts.
    pub fn partition(&mut self, group_a: &[ActorId], group_b: &[ActorId]) -> Partition {
        let mut pairs = Vec::with_capacity(group_a.len() * group_b.len() * 2);
        for &a in group_a {
            for &b in group_b {
                if a == b {
                    continue;
                }
                for pair in [(a, b), (b, a)] {
                    if self.blocked.insert(pair) {
                        pairs.push(pair);
                    }
                }
            }
        }
        Partition { pairs }
    }

    /// Isolates one actor from everyone in `others`, both directions.
    pub fn isolate(&mut self, actor: ActorId, others: &[ActorId]) -> Partition {
        self.partition(&[actor], others)
    }

    /// Heals a partition created by [`Network::partition`]/[`Network::isolate`],
    /// unblocking exactly the pairs that call blocked.
    pub fn heal(&mut self, partition: Partition) {
        for pair in partition.pairs {
            self.blocked.remove(&pair);
        }
    }

    /// Removes every block, regardless of origin.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Messages still occupying the `src → dst` queue at `now` (queued or
    /// mid-transmission). Zero for links without bandwidth modelling.
    pub fn queue_occupancy(&self, src: ActorId, dst: ActorId, now: SimTime) -> usize {
        self.queues
            .get(&(src, dst))
            .map_or(0, |q| q.departures.iter().filter(|&&d| d > now).count())
    }

    /// Decides the fate of a message of `size` bytes offered to the network
    /// at `now`.
    ///
    /// On delivery, advances the link's FIFO horizon so later messages on the
    /// same link cannot overtake this one. On finite-bandwidth links the
    /// message first claims the serial transmitter — waiting behind earlier
    /// traffic, or tail-dropping as [`DropReason::QueueFull`] when the queue
    /// is at capacity — and only then accrues propagation delay; `size` is
    /// ignored on infinite-bandwidth links.
    pub fn offer(
        &mut self,
        src: ActorId,
        dst: ActorId,
        now: SimTime,
        rng: &mut SimRng,
        size: u64,
        extra_delay: Duration,
    ) -> SendOutcome {
        if self.is_blocked(src, dst) {
            return SendOutcome::Lost(DropReason::Partitioned);
        }
        let link = self.link(src, dst);
        if link.loss > 0.0 && rng.chance(link.loss) {
            return SendOutcome::Lost(DropReason::Loss);
        }
        let jitter = if link.jitter.as_nanos() == 0 {
            Duration::ZERO
        } else {
            Duration::nanos(rng.below(link.jitter.as_nanos() + 1))
        };
        if link.bandwidth == 0 {
            // Legacy infinite-capacity path. The draws above happen in the
            // exact pre-queueing order, keeping historical digests stable.
            let mut at = now + link.latency + jitter + extra_delay;
            if link.fifo {
                let horizon = self.fifo_horizon.entry((src, dst)).or_insert(SimTime::ZERO);
                if at <= *horizon {
                    at = SimTime(horizon.0 + 1);
                }
                *horizon = at;
            }
            return SendOutcome::DeliverAt(at);
        }
        let q = self.queues.entry((src, dst)).or_default();
        while q.departures.front().is_some_and(|&d| d <= now) {
            q.departures.pop_front();
        }
        if link.queue > 0 && q.departures.len() >= link.queue {
            return SendOutcome::Lost(DropReason::QueueFull);
        }
        let start = if q.busy_until > now {
            q.busy_until
        } else {
            now
        };
        // Ceiling division in u128: a 1-byte message on a 1 GB/s link still
        // occupies the transmitter for a full nanosecond.
        let service =
            Duration::nanos((size as u128 * 1_000_000_000).div_ceil(link.bandwidth as u128) as u64);
        let depart = start + service;
        q.busy_until = depart;
        q.departures.push_back(depart);
        let depth = q.departures.len() as u32;
        let waited = Duration(start.0 - now.0);
        let mut at = depart + link.latency + jitter + extra_delay;
        if link.fifo {
            let horizon = self.fifo_horizon.entry((src, dst)).or_insert(SimTime::ZERO);
            if at <= *horizon {
                at = SimTime(horizon.0 + 1);
            }
            *horizon = at;
        }
        SendOutcome::Queued { at, depth, waited }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetConfig::default())
    }

    fn a() -> ActorId {
        ActorId(0)
    }
    fn b() -> ActorId {
        ActorId(1)
    }

    #[test]
    fn default_link_delivers_with_latency() {
        let mut n = net();
        let mut rng = SimRng::from_seed(1);
        match n.offer(a(), b(), SimTime(0), &mut rng, 0, Duration::ZERO) {
            SendOutcome::DeliverAt(t) => {
                assert!(t >= SimTime(Duration::micros(200).as_nanos()));
                assert!(t <= SimTime(Duration::micros(300).as_nanos()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut n = net();
        let mut rng = SimRng::from_seed(2);
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            match n.offer(a(), b(), SimTime(i), &mut rng, 0, Duration::ZERO) {
                SendOutcome::DeliverAt(t) => {
                    assert!(t > last, "message {i} overtook its predecessor");
                    last = t;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        let mut n = net();
        n.set_link(
            a(),
            b(),
            LinkConfig {
                latency: Duration::micros(100),
                jitter: Duration::micros(500),
                loss: 0.0,
                fifo: false,
                ..LinkConfig::default()
            },
        );
        let mut rng = SimRng::from_seed(3);
        let mut times = Vec::new();
        for i in 0..100 {
            if let SendOutcome::DeliverAt(t) =
                n.offer(a(), b(), SimTime(i), &mut rng, 0, Duration::ZERO)
            {
                times.push(t);
            }
        }
        let mut sorted = times.clone();
        sorted.sort();
        assert_ne!(times, sorted, "expected at least one reordering");
    }

    #[test]
    fn partition_blocks_both_directions_and_heals_exactly() {
        let mut n = net();
        let c = ActorId(2);
        // Pre-existing manual block must survive healing the partition.
        n.block(a(), c);
        let p = n.partition(&[a()], &[b(), c]);
        assert!(n.is_blocked(a(), b()));
        assert!(n.is_blocked(b(), a()));
        assert!(n.is_blocked(c, a()));
        // (a,c) was already blocked, so the partition does not own it.
        assert!(!p.pairs().contains(&(a(), c)));
        n.heal(p);
        assert!(!n.is_blocked(a(), b()));
        assert!(!n.is_blocked(b(), a()));
        assert!(n.is_blocked(a(), c), "manual block must survive heal");
    }

    #[test]
    fn blocked_link_drops_as_partitioned() {
        let mut n = net();
        n.block(a(), b());
        let mut rng = SimRng::from_seed(4);
        assert_eq!(
            n.offer(a(), b(), SimTime(0), &mut rng, 0, Duration::ZERO),
            SendOutcome::Lost(DropReason::Partitioned)
        );
        // Reverse direction unaffected.
        assert!(matches!(
            n.offer(b(), a(), SimTime(0), &mut rng, 0, Duration::ZERO),
            SendOutcome::DeliverAt(_)
        ));
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut n = net();
        n.set_link(
            a(),
            b(),
            LinkConfig {
                loss: 0.3,
                ..LinkConfig::default()
            },
        );
        let mut rng = SimRng::from_seed(5);
        let lost = (0..2000)
            .filter(|&i| {
                matches!(
                    n.offer(a(), b(), SimTime(i), &mut rng, 0, Duration::ZERO),
                    SendOutcome::Lost(DropReason::Loss)
                )
            })
            .count();
        assert!((450..750).contains(&lost), "lost {lost} of 2000 at p=0.3");
    }

    #[test]
    fn extra_delay_shifts_delivery() {
        let mut n = net();
        n.set_link(
            a(),
            b(),
            LinkConfig {
                latency: Duration::micros(100),
                jitter: Duration::ZERO,
                loss: 0.0,
                fifo: true,
                ..LinkConfig::default()
            },
        );
        let mut rng = SimRng::from_seed(6);
        let base = match n.offer(a(), b(), SimTime(0), &mut rng, 0, Duration::ZERO) {
            SendOutcome::DeliverAt(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        let mut n2 = net();
        n2.set_link(a(), b(), n.link(a(), b()));
        let mut rng2 = SimRng::from_seed(6);
        let delayed = match n2.offer(a(), b(), SimTime(0), &mut rng2, 0, Duration::millis(5)) {
            SendOutcome::DeliverAt(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(delayed, base + Duration::millis(5));
    }

    #[test]
    fn heal_all_clears_every_block() {
        let mut n = net();
        n.block(a(), b());
        n.partition(&[a()], &[b()]);
        n.heal_all();
        assert!(!n.is_blocked(a(), b()));
        assert!(!n.is_blocked(b(), a()));
    }

    /// 1 KB/ms transmitter, no jitter, 100 µs propagation.
    fn queued_link(queue: usize) -> LinkConfig {
        LinkConfig {
            latency: Duration::micros(100),
            jitter: Duration::ZERO,
            loss: 0.0,
            fifo: true,
            bandwidth: 1_000_000,
            queue,
        }
    }

    #[test]
    fn idle_queued_link_adds_only_transmission_to_propagation() {
        let mut n = net();
        n.set_link(a(), b(), queued_link(0));
        let mut rng = SimRng::from_seed(7);
        // 1000 bytes at 1_000_000 B/s = exactly 1 ms of transmission.
        match n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO) {
            SendOutcome::Queued { at, depth, waited } => {
                assert_eq!(at, SimTime(Duration::millis(1).0 + Duration::micros(100).0));
                assert_eq!(depth, 1);
                assert_eq!(waited, Duration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_size_message_on_idle_queued_link_sees_pure_propagation() {
        let mut n = net();
        n.set_link(a(), b(), queued_link(0));
        let mut rng = SimRng::from_seed(8);
        match n.offer(a(), b(), SimTime(0), &mut rng, 0, Duration::ZERO) {
            SendOutcome::Queued { at, waited, .. } => {
                assert_eq!(at, SimTime(Duration::micros(100).0));
                assert_eq!(waited, Duration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_offers_serialize_on_the_transmitter() {
        let mut n = net();
        n.set_link(a(), b(), queued_link(0));
        let mut rng = SimRng::from_seed(9);
        let first = n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO);
        let second = n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO);
        let (
            SendOutcome::Queued { at: t1, .. },
            SendOutcome::Queued {
                at: t2,
                waited,
                depth,
            },
        ) = (first, second)
        else {
            panic!("unexpected {first:?} / {second:?}");
        };
        assert_eq!(t2, t1 + Duration::millis(1), "second waits out the first");
        assert_eq!(waited, Duration::millis(1));
        assert_eq!(depth, 2);
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut n = net();
        n.set_link(a(), b(), queued_link(2));
        let mut rng = SimRng::from_seed(10);
        assert!(matches!(
            n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO),
            SendOutcome::Queued { .. }
        ));
        assert!(matches!(
            n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO),
            SendOutcome::Queued { .. }
        ));
        assert_eq!(
            n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO),
            SendOutcome::Lost(DropReason::QueueFull)
        );
        assert_eq!(n.queue_occupancy(a(), b(), SimTime(0)), 2);
        // Once the head departs, the queue admits traffic again.
        let later = SimTime(Duration::millis(1).0);
        assert!(matches!(
            n.offer(a(), b(), later, &mut rng, 1000, Duration::ZERO),
            SendOutcome::Queued { depth: 2, .. }
        ));
    }

    #[test]
    fn queue_drains_fully_when_idle() {
        let mut n = net();
        n.set_link(a(), b(), queued_link(4));
        let mut rng = SimRng::from_seed(11);
        for _ in 0..4 {
            n.offer(a(), b(), SimTime(0), &mut rng, 1000, Duration::ZERO);
        }
        assert_eq!(n.queue_occupancy(a(), b(), SimTime(0)), 4);
        let drained = SimTime(Duration::millis(10).0);
        assert_eq!(n.queue_occupancy(a(), b(), drained), 0);
        assert!(matches!(
            n.offer(a(), b(), drained, &mut rng, 1000, Duration::ZERO),
            SendOutcome::Queued {
                depth: 1,
                waited: Duration::ZERO,
                ..
            }
        ));
    }

    #[test]
    fn zero_bandwidth_links_keep_the_legacy_path_and_rng_sequence() {
        // Same seed, same offers: a bandwidth-0 link must produce exactly
        // the delivery times the pre-queueing network produced (pinned
        // values so a behavioural change in the legacy path fails loudly).
        let mut n = net();
        let mut rng = SimRng::from_seed(12);
        let mut ats = Vec::new();
        for i in 0..8u64 {
            match n.offer(
                a(),
                b(),
                SimTime(i * 1000),
                &mut rng,
                1 << 20,
                Duration::ZERO,
            ) {
                SendOutcome::DeliverAt(t) => ats.push(t),
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut n2 = net();
        let mut rng2 = SimRng::from_seed(12);
        let mut ats2 = Vec::new();
        for i in 0..8u64 {
            match n2.offer(a(), b(), SimTime(i * 1000), &mut rng2, 0, Duration::ZERO) {
                SendOutcome::DeliverAt(t) => ats2.push(t),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(ats, ats2, "message size must not perturb legacy links");
    }
}
