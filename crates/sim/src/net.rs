//! The message network: latency, loss, FIFO links and partitions.
//!
//! Links are FIFO by default (modelling TCP-backed RPC/watch streams: a later
//! message never overtakes an earlier one on the same link), with configurable
//! base latency, jitter and loss. Partitions block links in both or one
//! direction; healing restores them. Partitions and loss are how the
//! *unintentional* part of a partial history arises — the `ph-core`
//! interceptors add the *targeted* part on top.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::ActorId;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use crate::trace::DropReason;

/// Behaviour of a single directed link.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Minimum one-way delay.
    pub latency: Duration,
    /// Uniform extra delay in `[0, jitter]` added per message.
    pub jitter: Duration,
    /// Probability a message is silently lost.
    pub loss: f64,
    /// If `true` (the default), deliveries on this link never reorder.
    pub fifo: bool,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            latency: Duration::micros(200),
            jitter: Duration::micros(100),
            loss: 0.0,
            fifo: true,
        }
    }
}

/// Network-wide defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetConfig {
    /// Link behaviour used for every pair without an override.
    pub default_link: LinkConfig,
}

/// A handle to an active partition, listing exactly the directed pairs it
/// blocked, so healing removes precisely what the partition added.
#[derive(Debug, Clone)]
pub struct Partition {
    pub(crate) pairs: Vec<(ActorId, ActorId)>,
}

impl Partition {
    /// The directed pairs blocked by this partition.
    pub fn pairs(&self) -> &[(ActorId, ActorId)] {
        &self.pairs
    }
}

/// Outcome of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Deliver at the given time.
    DeliverAt(SimTime),
    /// Lost; the reason is recorded in the trace.
    Lost(DropReason),
}

/// The simulated network fabric.
#[derive(Debug)]
pub struct Network {
    default_link: LinkConfig,
    overrides: BTreeMap<(ActorId, ActorId), LinkConfig>,
    blocked: BTreeSet<(ActorId, ActorId)>,
    /// Last scheduled delivery per directed link, for FIFO clamping.
    fifo_horizon: BTreeMap<(ActorId, ActorId), SimTime>,
}

impl Network {
    /// Creates a network with the given defaults.
    pub fn new(config: NetConfig) -> Network {
        Network {
            default_link: config.default_link,
            overrides: BTreeMap::new(),
            blocked: BTreeSet::new(),
            fifo_horizon: BTreeMap::new(),
        }
    }

    /// The link configuration in effect for `src → dst`.
    pub fn link(&self, src: ActorId, dst: ActorId) -> LinkConfig {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Overrides the configuration of the directed link `src → dst`.
    pub fn set_link(&mut self, src: ActorId, dst: ActorId, cfg: LinkConfig) {
        self.overrides.insert((src, dst), cfg);
    }

    /// Overrides both directions between `a` and `b`.
    pub fn set_link_bidir(&mut self, a: ActorId, b: ActorId, cfg: LinkConfig) {
        self.set_link(a, b, cfg);
        self.set_link(b, a, cfg);
    }

    /// Blocks the directed link `src → dst` (messages are dropped as
    /// [`DropReason::Partitioned`]).
    pub fn block(&mut self, src: ActorId, dst: ActorId) {
        self.blocked.insert((src, dst));
    }

    /// Unblocks the directed link `src → dst`.
    pub fn unblock(&mut self, src: ActorId, dst: ActorId) {
        self.blocked.remove(&(src, dst));
    }

    /// `true` if `src → dst` is currently blocked.
    pub fn is_blocked(&self, src: ActorId, dst: ActorId) -> bool {
        self.blocked.contains(&(src, dst))
    }

    /// Partitions `group_a` from `group_b` in both directions, returning a
    /// handle that [`Network::heal`] accepts.
    pub fn partition(&mut self, group_a: &[ActorId], group_b: &[ActorId]) -> Partition {
        let mut pairs = Vec::with_capacity(group_a.len() * group_b.len() * 2);
        for &a in group_a {
            for &b in group_b {
                if a == b {
                    continue;
                }
                for pair in [(a, b), (b, a)] {
                    if self.blocked.insert(pair) {
                        pairs.push(pair);
                    }
                }
            }
        }
        Partition { pairs }
    }

    /// Isolates one actor from everyone in `others`, both directions.
    pub fn isolate(&mut self, actor: ActorId, others: &[ActorId]) -> Partition {
        self.partition(&[actor], others)
    }

    /// Heals a partition created by [`Network::partition`]/[`Network::isolate`],
    /// unblocking exactly the pairs that call blocked.
    pub fn heal(&mut self, partition: Partition) {
        for pair in partition.pairs {
            self.blocked.remove(&pair);
        }
    }

    /// Removes every block, regardless of origin.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Decides the fate of a message offered to the network at `now`.
    ///
    /// On delivery, advances the link's FIFO horizon so later messages on the
    /// same link cannot overtake this one.
    pub fn offer(
        &mut self,
        src: ActorId,
        dst: ActorId,
        now: SimTime,
        rng: &mut SimRng,
        extra_delay: Duration,
    ) -> SendOutcome {
        if self.is_blocked(src, dst) {
            return SendOutcome::Lost(DropReason::Partitioned);
        }
        let link = self.link(src, dst);
        if link.loss > 0.0 && rng.chance(link.loss) {
            return SendOutcome::Lost(DropReason::Loss);
        }
        let jitter = if link.jitter.as_nanos() == 0 {
            Duration::ZERO
        } else {
            Duration::nanos(rng.below(link.jitter.as_nanos() + 1))
        };
        let mut at = now + link.latency + jitter + extra_delay;
        if link.fifo {
            let horizon = self.fifo_horizon.entry((src, dst)).or_insert(SimTime::ZERO);
            if at <= *horizon {
                at = SimTime(horizon.0 + 1);
            }
            *horizon = at;
        }
        SendOutcome::DeliverAt(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetConfig::default())
    }

    fn a() -> ActorId {
        ActorId(0)
    }
    fn b() -> ActorId {
        ActorId(1)
    }

    #[test]
    fn default_link_delivers_with_latency() {
        let mut n = net();
        let mut rng = SimRng::from_seed(1);
        match n.offer(a(), b(), SimTime(0), &mut rng, Duration::ZERO) {
            SendOutcome::DeliverAt(t) => {
                assert!(t >= SimTime(Duration::micros(200).as_nanos()));
                assert!(t <= SimTime(Duration::micros(300).as_nanos()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut n = net();
        let mut rng = SimRng::from_seed(2);
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            match n.offer(a(), b(), SimTime(i), &mut rng, Duration::ZERO) {
                SendOutcome::DeliverAt(t) => {
                    assert!(t > last, "message {i} overtook its predecessor");
                    last = t;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        let mut n = net();
        n.set_link(
            a(),
            b(),
            LinkConfig {
                latency: Duration::micros(100),
                jitter: Duration::micros(500),
                loss: 0.0,
                fifo: false,
            },
        );
        let mut rng = SimRng::from_seed(3);
        let mut times = Vec::new();
        for i in 0..100 {
            if let SendOutcome::DeliverAt(t) =
                n.offer(a(), b(), SimTime(i), &mut rng, Duration::ZERO)
            {
                times.push(t);
            }
        }
        let mut sorted = times.clone();
        sorted.sort();
        assert_ne!(times, sorted, "expected at least one reordering");
    }

    #[test]
    fn partition_blocks_both_directions_and_heals_exactly() {
        let mut n = net();
        let c = ActorId(2);
        // Pre-existing manual block must survive healing the partition.
        n.block(a(), c);
        let p = n.partition(&[a()], &[b(), c]);
        assert!(n.is_blocked(a(), b()));
        assert!(n.is_blocked(b(), a()));
        assert!(n.is_blocked(c, a()));
        // (a,c) was already blocked, so the partition does not own it.
        assert!(!p.pairs().contains(&(a(), c)));
        n.heal(p);
        assert!(!n.is_blocked(a(), b()));
        assert!(!n.is_blocked(b(), a()));
        assert!(n.is_blocked(a(), c), "manual block must survive heal");
    }

    #[test]
    fn blocked_link_drops_as_partitioned() {
        let mut n = net();
        n.block(a(), b());
        let mut rng = SimRng::from_seed(4);
        assert_eq!(
            n.offer(a(), b(), SimTime(0), &mut rng, Duration::ZERO),
            SendOutcome::Lost(DropReason::Partitioned)
        );
        // Reverse direction unaffected.
        assert!(matches!(
            n.offer(b(), a(), SimTime(0), &mut rng, Duration::ZERO),
            SendOutcome::DeliverAt(_)
        ));
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut n = net();
        n.set_link(
            a(),
            b(),
            LinkConfig {
                loss: 0.3,
                ..LinkConfig::default()
            },
        );
        let mut rng = SimRng::from_seed(5);
        let lost = (0..2000)
            .filter(|&i| {
                matches!(
                    n.offer(a(), b(), SimTime(i), &mut rng, Duration::ZERO),
                    SendOutcome::Lost(DropReason::Loss)
                )
            })
            .count();
        assert!((450..750).contains(&lost), "lost {lost} of 2000 at p=0.3");
    }

    #[test]
    fn extra_delay_shifts_delivery() {
        let mut n = net();
        n.set_link(
            a(),
            b(),
            LinkConfig {
                latency: Duration::micros(100),
                jitter: Duration::ZERO,
                loss: 0.0,
                fifo: true,
            },
        );
        let mut rng = SimRng::from_seed(6);
        let base = match n.offer(a(), b(), SimTime(0), &mut rng, Duration::ZERO) {
            SendOutcome::DeliverAt(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        let mut n2 = net();
        n2.set_link(a(), b(), n.link(a(), b()));
        let mut rng2 = SimRng::from_seed(6);
        let delayed = match n2.offer(a(), b(), SimTime(0), &mut rng2, Duration::millis(5)) {
            SendOutcome::DeliverAt(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(delayed, base + Duration::millis(5));
    }

    #[test]
    fn heal_all_clears_every_block() {
        let mut n = net();
        n.block(a(), b());
        n.partition(&[a()], &[b()]);
        n.heal_all();
        assert!(!n.is_blocked(a(), b()));
        assert!(!n.is_blocked(b(), a()));
    }
}
