//! Identifier newtypes used throughout the simulator.

/// Identifies an actor (a simulated process) within a [`crate::World`].
///
/// Actor ids are assigned densely in spawn order, which makes them usable as
/// vector indices in hot paths (the network matrix, vector clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The dense index of this actor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor-{}", self.0)
    }
}

/// Uniquely identifies one message send within a run.
///
/// Every send gets a fresh id; the id appears in the [`crate::Trace`] on the
/// send, delivery and drop records for the message, which is how
/// happens-before edges are recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifies a pending timer set by an actor.
///
/// Timer ids are unique within a run. A timer that has fired or been
/// cancelled never fires again, even if an id were forged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl std::fmt::Display for TimerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_inner_value() {
        assert!(ActorId(1) < ActorId(2));
        assert!(MsgId(9) < MsgId(10));
        assert_eq!(ActorId(3).index(), 3);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(ActorId(7).to_string(), "actor-7");
        assert_eq!(MsgId(1).to_string(), "m1");
        assert_eq!(TimerId(2).to_string(), "t2");
    }
}
