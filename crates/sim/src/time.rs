//! Logical simulation time.
//!
//! The simulator has no relationship to wall-clock time: [`SimTime`] is a
//! monotonically increasing logical nanosecond counter advanced only by the
//! event loop. All latencies, timeouts and TTLs in the workspace are
//! [`Duration`]s of this logical clock, which is what makes runs replayable.

/// A point in logical simulation time, in nanoseconds since the start of the
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of logical simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the run.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the start of the run.
    #[inline]
    pub fn millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant advanced by `d`, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// A duration of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Duration {
        Duration(n)
    }

    /// A duration of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> Duration {
        Duration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> Duration {
        Duration(n * 1_000_000)
    }

    /// A duration of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> Duration {
        Duration(n * 1_000_000_000)
    }

    /// The length of this duration in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The length of this duration in whole milliseconds.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The sum of two durations, saturating on overflow.
    #[inline]
    pub fn plus(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// This duration scaled by an integer factor, saturating on overflow.
    #[inline]
    pub fn times(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = self.0 / 1_000;
        write!(f, "{}.{:03}ms", us / 1_000, us % 1_000)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = self.0 / 1_000;
        write!(f, "{}.{:03}ms", us / 1_000, us % 1_000)
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.after(rhs)
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_is_saturating() {
        assert_eq!(SimTime::MAX.after(Duration::secs(1)), SimTime::MAX);
        assert_eq!(SimTime(5).since(SimTime(10)), Duration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(4)), Duration(6));
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(Duration::micros(1).as_nanos(), 1_000);
        assert_eq!(Duration::millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::millis(3).as_millis(), 3);
    }

    #[test]
    fn operators_match_named_methods() {
        let t = SimTime(1_000);
        assert_eq!(t + Duration(500), SimTime(1_500));
        assert_eq!(SimTime(1_500) - t, Duration(500));
    }

    #[test]
    fn display_formats_as_milliseconds() {
        assert_eq!(SimTime(1_500_000).to_string(), "1.500ms");
        assert_eq!(Duration::micros(250).to_string(), "0.250ms");
    }

    #[test]
    fn times_and_plus_saturate() {
        assert_eq!(Duration(u64::MAX).plus(Duration(1)), Duration(u64::MAX));
        assert_eq!(Duration(u64::MAX).times(2), Duration(u64::MAX));
        assert_eq!(Duration::millis(2).times(3), Duration::millis(6));
    }
}
