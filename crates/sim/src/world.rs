//! The simulation driver.
//!
//! A [`World`] owns the actors, the clock, the event queue, the network and
//! the trace, and executes events in a deterministic total order
//! `(time, insertion sequence)`. The fault-injection surface — crashes,
//! restarts, partitions, interceptors, held-message release — lives here and
//! is what `ph-core`'s perturbation strategies drive.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::actor::{Actor, ActorObj, Ctx, Effect};
use crate::event::{Event, Scheduled};
use crate::ids::{ActorId, MsgId, TimerId};
use crate::intercept::{Interceptor, NullInterceptor, Verdict};
use crate::intern::{Interner, Name, Sym};
use crate::metrics::{Metrics, MetricsReport};
use crate::msg::{AnyMsg, Envelope};
use crate::net::{NetConfig, Network, Partition, SendOutcome};
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use crate::trace::{DropReason, Trace, TraceEvent, TraceEventKind};

/// Tuning knobs for a [`World`].
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Network defaults.
    pub net: NetConfig,
    /// Safety cap on processed events; exceeding it panics (it nearly always
    /// means a zero-delay message loop in a protocol).
    pub max_events: u64,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            net: NetConfig::default(),
            max_events: 50_000_000,
        }
    }
}

/// Recyclable backing storage for a [`World`]: the allocations that grow
/// large over a trial (the event queue and the trace) plus the effect
/// scratch vector. Pooling them lets back-to-back trials reuse warmed-up
/// capacity instead of re-growing each buffer from empty.
struct WorldBuffers {
    queue: BinaryHeap<Reverse<Scheduled>>,
    event_slab: Vec<Option<Event>>,
    free_slots: Vec<u32>,
    trace: Vec<TraceEvent>,
    effects: Vec<Effect>,
}

/// Cap on pooled buffer sets per thread. Worlds are almost always live
/// one-at-a-time (an explorer runs trials sequentially per worker thread),
/// so anything beyond a few entries would be dead weight.
const BUFFER_POOL_MAX: usize = 4;

thread_local! {
    /// Per-thread free list of world buffers. [`World::new`] draws from it
    /// and [`Drop`] returns cleared storage, so steady-state trial loops
    /// allocate nothing for the queue, trace or effect scratch. Being
    /// thread-local it needs no synchronization, and because only *capacity*
    /// survives — contents are cleared on both paths — reuse cannot leak
    /// state between trials or perturb the deterministic schedule.
    static BUFFER_POOL: std::cell::RefCell<Vec<WorldBuffers>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

struct Slot {
    name: Name,
    /// The actor's name pre-interned in the metrics registry, so metric
    /// effects attribute without a lookup or allocation.
    msym: Sym,
    actor: Box<dyn ActorObj>,
    rng: SimRng,
    crashed: bool,
    incarnation: u32,
}

/// A deterministic discrete-event simulation.
///
/// See the crate-level docs for an end-to-end example.
pub struct World {
    now: SimTime,
    seed: u64,
    seq: u64,
    next_msg: u64,
    next_timer: u64,
    processed: u64,
    max_events: u64,
    actors: Vec<Slot>,
    names: BTreeMap<String, ActorId>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Payload storage for queued events: [`Scheduled`] keys carry a slot
    /// index into this slab, keeping heap sifts small. Slots are recycled
    /// through `free_slots` as events are processed.
    event_slab: Vec<Option<Event>>,
    /// Vacant `event_slab` slots, reused LIFO.
    free_slots: Vec<u32>,
    /// Pending (armed, uncancelled) timers and their owners.
    timers: BTreeMap<TimerId, ActorId>,
    held: BTreeMap<MsgId, Envelope>,
    net: Network,
    net_rng: SimRng,
    interceptor: Box<dyn Interceptor>,
    trace: Trace,
    metrics: Metrics,
    /// Interned trace strings (actor names, message kinds, labels): one
    /// allocation per distinct string per world, shared by every event.
    interner: Interner,
    /// Open span start times, LIFO per `(actor, label)`.
    open_spans: BTreeMap<(ActorId, &'static str), Vec<SimTime>>,
    /// Pre-interned `"<label>.ns"` metric names, one per span label.
    span_ns: BTreeMap<&'static str, Sym>,
    /// Reusable effect buffer for [`World::run_callback`]; taken for the
    /// duration of a callback and put back cleared, so steady-state
    /// callbacks allocate no effect storage.
    effects_scratch: Vec<Effect>,
}

impl World {
    /// Creates an empty world from a configuration and a root seed.
    ///
    /// Two worlds created with equal configurations and seeds, populated and
    /// driven identically, produce identical traces.
    pub fn new(config: WorldConfig, seed: u64) -> World {
        // Reuse pooled buffers from a previous world on this thread, if any.
        // Capacity is the only thing that survives the round trip.
        let (queue, event_slab, free_slots, trace, effects_scratch) =
            match BUFFER_POOL.with(|pool| pool.borrow_mut().pop()) {
                Some(b) => (
                    b.queue,
                    b.event_slab,
                    b.free_slots,
                    Trace::with_buffer(b.trace),
                    b.effects,
                ),
                None => (
                    BinaryHeap::new(),
                    Vec::new(),
                    Vec::new(),
                    Trace::new(),
                    Vec::new(),
                ),
            };
        World {
            now: SimTime::ZERO,
            seed,
            seq: 0,
            next_msg: 0,
            next_timer: 0,
            processed: 0,
            max_events: config.max_events,
            actors: Vec::new(),
            names: BTreeMap::new(),
            queue,
            event_slab,
            free_slots,
            timers: BTreeMap::new(),
            held: BTreeMap::new(),
            net: Network::new(config.net),
            net_rng: SimRng::derive(seed, u64::MAX),
            interceptor: Box::new(NullInterceptor),
            trace,
            metrics: Metrics::new(),
            interner: Interner::new(),
            open_spans: BTreeMap::new(),
            span_ns: BTreeMap::new(),
            effects_scratch,
        }
    }

    /// The root seed this world was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes ownership of the trace, leaving an empty one behind. For
    /// harnesses that keep the trace after the world is torn down — taking
    /// is free where cloning would deep-copy every event.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry, for samples recorded from
    /// outside the message plane (e.g. a harness probing view lag each
    /// scheduling quantum under a label of its choosing).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Snapshots the metrics registry into an ordered, comparable report.
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Read access to the network fabric.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network fabric (blocking links, partitions,
    /// latency overrides).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Installs a message interceptor, replacing any previous one.
    pub fn set_interceptor(&mut self, i: impl Interceptor + 'static) {
        self.interceptor = Box::new(i);
    }

    /// Removes any installed interceptor.
    pub fn clear_interceptor(&mut self) {
        self.interceptor = Box::new(NullInterceptor);
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Spawns an actor under a unique `name`, running its
    /// [`Actor::on_start`] immediately at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken.
    pub fn spawn<A: Actor>(&mut self, name: &str, actor: A) -> ActorId {
        assert!(
            !self.names.contains_key(name),
            "actor name {name:?} already in use"
        );
        let id = ActorId(self.actors.len() as u32);
        let rng = SimRng::derive(self.seed, id.0 as u64);
        let interned = self.interner.intern_name(name);
        self.actors.push(Slot {
            name: interned.clone(),
            msym: self.metrics.sym(name),
            actor: Box::new(actor),
            rng,
            crashed: false,
            incarnation: 0,
        });
        self.names.insert(name.to_string(), id);
        self.trace.push(
            self.now,
            TraceEventKind::Spawned {
                actor: id,
                name: interned,
            },
        );
        self.run_callback(id, |actor, ctx| actor.on_start(ctx));
        id
    }

    /// Looks an actor up by name.
    pub fn lookup(&self, name: &str) -> Option<ActorId> {
        self.names.get(name).copied()
    }

    /// The name an actor was spawned under.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a spawned actor.
    pub fn name_of(&self, id: ActorId) -> &str {
        &self.actors[id.index()].name
    }

    /// The actor's name as a cheaply clonable interned handle (an `Rc`
    /// bump, where [`World::name_of`] would force callers that need
    /// ownership to copy the string).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a spawned actor.
    pub fn name_handle(&self, id: ActorId) -> Name {
        self.actors[id.index()].name.clone()
    }

    /// Ids of all spawned actors, in spawn order. The iterator does not
    /// borrow the world.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> {
        (0..self.actors.len() as u32).map(ActorId)
    }

    /// `true` if the actor is currently crashed.
    pub fn is_crashed(&self, id: ActorId) -> bool {
        self.actors[id.index()].crashed
    }

    /// How many times the actor has restarted.
    pub fn incarnation(&self, id: ActorId) -> u32 {
        self.actors[id.index()].incarnation
    }

    /// Borrows an actor's concrete state (read-only); `None` if `id` refers
    /// to a different type.
    pub fn actor_ref<A: Actor>(&self, id: ActorId) -> Option<&A> {
        self.actors[id.index()].actor.as_any().downcast_ref::<A>()
    }

    /// Runs `f` against an actor's concrete state and a full [`Ctx`],
    /// synchronously, as if a callback had fired. This is how workloads and
    /// tests drive components from outside the message plane.
    ///
    /// # Panics
    ///
    /// Panics if the actor has a different concrete type or is crashed.
    pub fn invoke<A: Actor, R>(&mut self, id: ActorId, f: impl FnOnce(&mut A, &mut Ctx) -> R) -> R {
        assert!(
            !self.actors[id.index()].crashed,
            "invoke on crashed actor {}",
            self.actors[id.index()].name
        );
        let mut out = None;
        let out_ref = &mut out;
        self.run_callback(id, move |actor, ctx| {
            let concrete = actor
                .as_any_mut()
                .downcast_mut::<A>()
                .expect("invoke: actor has a different concrete type");
            *out_ref = Some(f(concrete, ctx));
        });
        out.expect("callback ran")
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Crashes an actor immediately: it stops receiving messages and timers
    /// until restarted, and in-flight messages to it are dropped.
    /// Crashing a crashed actor is a no-op.
    pub fn crash(&mut self, id: ActorId) {
        self.do_crash(id);
    }

    /// Schedules a crash at an absolute time.
    pub fn schedule_crash(&mut self, id: ActorId, at: SimTime) {
        self.schedule(at, Event::Crash { actor: id });
    }

    /// Restarts a crashed actor immediately, bumping its incarnation and
    /// invoking [`Actor::on_restart`]. Restarting a live actor is a no-op.
    pub fn restart(&mut self, id: ActorId) {
        self.do_restart(id);
    }

    /// Schedules a restart at an absolute time.
    pub fn schedule_restart(&mut self, id: ActorId, at: SimTime) {
        self.schedule(at, Event::Restart { actor: id });
    }

    /// Partitions two groups of actors (both directions). Returns a handle
    /// for [`World::heal`].
    pub fn partition(&mut self, group_a: &[ActorId], group_b: &[ActorId]) -> Partition {
        self.net.partition(group_a, group_b)
    }

    /// Heals a partition created by [`World::partition`].
    pub fn heal(&mut self, p: Partition) {
        self.net.heal(p);
    }

    // ------------------------------------------------------------------
    // Held messages (interceptor Verdict::Hold)
    // ------------------------------------------------------------------

    /// Ids of all currently held messages, in hold order.
    pub fn held_ids(&self) -> impl Iterator<Item = MsgId> + '_ {
        self.held.keys().copied()
    }

    /// Metadata of a held message: `(src, dst, short kind)`.
    pub fn held_info(&self, id: MsgId) -> Option<(ActorId, ActorId, &'static str)> {
        self.held.get(&id).map(|e| (e.src, e.dst, e.kind_short()))
    }

    /// Releases a held message back toward its destination, delivering it
    /// shortly after the current time (to the destination's *current*
    /// incarnation — this is how replayed notifications reach a restarted
    /// component). Returns `false` if `id` is not held.
    pub fn release_held(&mut self, id: MsgId) -> bool {
        let Some(env) = self.held.remove(&id) else {
            return false;
        };
        self.trace
            .push(self.now, TraceEventKind::MessageReleased { id });
        let dst_incarnation = self.actors[env.dst.index()].incarnation;
        let at = SimTime(self.now.0 + 1);
        self.schedule(
            at,
            Event::Deliver {
                env,
                dst_incarnation,
            },
        );
        true
    }

    /// Releases every held message, in hold order.
    pub fn release_all_held(&mut self) {
        while let Some((&id, _)) = self.held.first_key_value() {
            self.release_held(id);
        }
    }

    /// Permanently drops a held message. Returns `false` if `id` is not held.
    pub fn drop_held(&mut self, id: MsgId) -> bool {
        let Some(env) = self.held.remove(&id) else {
            return false;
        };
        self.trace.push(
            self.now,
            TraceEventKind::MessageDropped {
                id: env.id,
                src: env.src,
                dst: env.dst,
                kind: env.short,
                reason: DropReason::Interceptor,
            },
        );
        true
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Processes the single next event. Returns `false` if the queue is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the configured `max_events` cap is exceeded.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(scheduled)) = self.queue.pop() else {
            return false;
        };
        self.processed += 1;
        assert!(
            self.processed <= self.max_events,
            "simulation exceeded max_events={} — livelock or runaway timer loop?",
            self.max_events
        );
        debug_assert!(scheduled.at >= self.now, "time went backwards");
        self.now = scheduled.at;
        let ev = self.event_slab[scheduled.slot as usize]
            .take()
            .expect("scheduled slot vacant");
        self.free_slots.push(scheduled.slot);
        match ev {
            Event::Deliver {
                env,
                dst_incarnation,
            } => self.deliver(env, dst_incarnation),
            Event::TimerFire { actor, timer, tag } => {
                // Valid only if still armed and the owner is alive; crash
                // disarms all of an actor's timers.
                if self.timers.remove(&timer).is_some() && !self.actors[actor.index()].crashed {
                    self.trace
                        .push(self.now, TraceEventKind::TimerFired { actor, timer, tag });
                    self.run_callback(actor, move |a, ctx| a.on_timer(timer, tag, ctx));
                }
            }
            Event::Crash { actor } => self.do_crash(actor),
            Event::Restart { actor } => self.do_restart(actor),
        }
        true
    }

    /// The time of the next pending event, if any.
    pub fn peek_next(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(s)| s.at)
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while matches!(self.peek_next(), Some(at) if at <= t) {
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs for a span of logical time from now.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Processes events until the queue is empty or the next event lies
    /// beyond `deadline_ns`. Returns `true` if the queue drained (the world
    /// is quiescent).
    pub fn run_until_quiescent(&mut self, deadline_ns: u64) -> bool {
        while matches!(self.peek_next(), Some(at) if at.0 <= deadline_ns) {
            self.step();
        }
        self.queue.is_empty()
    }

    /// Steps until a trace event satisfying `pred` is recorded or the clock
    /// would pass `deadline`. Returns the matching event's sequence number,
    /// or `None` on timeout. Events recorded before this call are not
    /// considered.
    pub fn run_until_event(
        &mut self,
        deadline: SimTime,
        pred: impl Fn(&TraceEvent) -> bool,
    ) -> Option<u64> {
        let mut scanned = self.trace.len();
        loop {
            for e in &self.trace.events()[scanned..] {
                if pred(e) {
                    return Some(e.seq);
                }
            }
            scanned = self.trace.len();
            match self.peek_next() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => {
                    if deadline > self.now {
                        self.now = deadline;
                    }
                    return None;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, at: SimTime, ev: Event) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.event_slab[s as usize] = Some(ev);
                s
            }
            None => {
                let s = u32::try_from(self.event_slab.len()).expect("event slab overflow");
                self.event_slab.push(Some(ev));
                s
            }
        };
        self.queue.push(Reverse(Scheduled { at, seq, slot }));
    }

    fn deliver(&mut self, env: Envelope, dst_incarnation: u32) {
        let slot = &self.actors[env.dst.index()];
        let reason = if slot.crashed {
            Some(DropReason::DestCrashed)
        } else if slot.incarnation != dst_incarnation {
            Some(DropReason::Stale)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.trace.push(
                self.now,
                TraceEventKind::MessageDropped {
                    id: env.id,
                    src: env.src,
                    dst: env.dst,
                    kind: env.short,
                    reason,
                },
            );
            return;
        }
        self.trace.push(
            self.now,
            TraceEventKind::MessageDelivered {
                id: env.id,
                src: env.src,
                dst: env.dst,
                kind: env.short.clone(),
            },
        );
        let Envelope { src, dst, msg, .. } = env;
        self.run_callback(dst, move |a, ctx| a.on_message(src, msg, ctx));
    }

    fn do_crash(&mut self, id: ActorId) {
        let slot = &mut self.actors[id.index()];
        if slot.crashed {
            return;
        }
        slot.crashed = true;
        self.timers.retain(|_, owner| *owner != id);
        // Open spans die with the incarnation that opened them.
        self.open_spans.retain(|(owner, _), _| *owner != id);
        self.trace
            .push(self.now, TraceEventKind::Crashed { actor: id });
    }

    fn do_restart(&mut self, id: ActorId) {
        let slot = &mut self.actors[id.index()];
        if !slot.crashed {
            return;
        }
        slot.crashed = false;
        slot.incarnation += 1;
        self.trace
            .push(self.now, TraceEventKind::Restarted { actor: id });
        self.run_callback(id, |a, ctx| a.on_restart(ctx));
    }

    /// Runs one actor callback and applies its effects. The effect buffer
    /// is a reusable scratch vector (taken for the duration of the callback,
    /// put back cleared), so steady-state callbacks allocate nothing here.
    fn run_callback(&mut self, id: ActorId, f: impl FnOnce(&mut dyn ActorObj, &mut Ctx)) {
        let mut effects = std::mem::take(&mut self.effects_scratch);
        debug_assert!(effects.is_empty());
        {
            let now = self.now;
            let next_timer_id = &mut self.next_timer;
            let slot = &mut self.actors[id.index()];
            let mut ctx = Ctx {
                me: id,
                now,
                rng: &mut slot.rng,
                effects: &mut effects,
                next_timer_id,
            };
            f(slot.actor.as_mut(), &mut ctx);
        }
        self.apply_effects(id, &mut effects);
        effects.clear();
        self.effects_scratch = effects;
    }

    fn apply_effects(&mut self, src: ActorId, effects: &mut Vec<Effect>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    kind,
                    bytes,
                    msg,
                } => self.do_send(src, to, kind, bytes, msg),
                Effect::SetTimer { id, after, tag } => {
                    let fire_at = self.now + after;
                    self.timers.insert(id, src);
                    self.trace.push(
                        self.now,
                        TraceEventKind::TimerSet {
                            actor: src,
                            timer: id,
                            tag,
                            fire_at,
                        },
                    );
                    self.schedule(
                        fire_at,
                        Event::TimerFire {
                            actor: src,
                            timer: id,
                            tag,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.timers.remove(&id);
                }
                Effect::Annotate { label, data } => {
                    let label = self.interner.intern_name(label);
                    self.trace.push(
                        self.now,
                        TraceEventKind::Annotation {
                            actor: src,
                            label,
                            data,
                        },
                    );
                }
                Effect::CounterAdd { name, delta } => {
                    let component = self.actors[src.index()].msym;
                    let name = self.metrics.sym(name);
                    self.metrics.counter_add_sym(component, name, delta);
                }
                Effect::GaugeSet { name, value } => {
                    let component = self.actors[src.index()].msym;
                    let name = self.metrics.sym(name);
                    self.metrics.gauge_set_sym(component, name, value);
                }
                Effect::Observe { name, value } => {
                    let component = self.actors[src.index()].msym;
                    let name = self.metrics.sym(name);
                    self.metrics.observe_sym(component, name, value);
                }
                Effect::SpanBegin { label, detail } => {
                    self.open_spans
                        .entry((src, label))
                        .or_default()
                        .push(self.now);
                    let label = self.interner.intern_name(label);
                    self.trace.push(
                        self.now,
                        TraceEventKind::SpanBegin {
                            actor: src,
                            label,
                            detail,
                        },
                    );
                }
                Effect::SpanEnd { label } => {
                    let started = self
                        .open_spans
                        .get_mut(&(src, label))
                        .and_then(|stack| stack.pop());
                    // An end with no matching begin is dropped silently: a
                    // crash wipes the actor's open spans, and its restarted
                    // incarnation may close scopes it never opened.
                    if let Some(started) = started {
                        let interned = self.interner.intern_name(label);
                        self.trace.push(
                            self.now,
                            TraceEventKind::SpanEnd {
                                actor: src,
                                label: interned,
                            },
                        );
                        let ns_sym = match self.span_ns.get(label) {
                            Some(&s) => s,
                            None => {
                                let s = self.metrics.sym(&format!("{label}.ns"));
                                self.span_ns.insert(label, s);
                                s
                            }
                        };
                        let component = self.actors[src.index()].msym;
                        self.metrics
                            .observe_sym(component, ns_sym, self.now.0 - started.0);
                    }
                }
            }
        }
    }

    fn do_send(&mut self, src: ActorId, dst: ActorId, kind: &'static str, bytes: u64, msg: AnyMsg) {
        assert!(
            dst.index() < self.actors.len(),
            "send to unknown actor {dst}"
        );
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        let short = self
            .interner
            .intern_name(kind.rsplit("::").next().unwrap_or(kind));
        let env = Envelope {
            id,
            src,
            dst,
            sent_at: self.now,
            kind,
            short,
            bytes,
            msg,
        };
        self.trace.push(
            self.now,
            TraceEventKind::MessageSent {
                id,
                src,
                dst,
                kind: env.short.clone(),
            },
        );
        let verdict = self.interceptor.on_send(&env, self.now);
        let extra = match verdict {
            Verdict::Pass => Duration::ZERO,
            Verdict::Delay(d) => {
                self.trace.push(
                    self.now,
                    TraceEventKind::MessageDelayed {
                        id,
                        src,
                        dst,
                        kind: env.short.clone(),
                        by: d,
                    },
                );
                d
            }
            Verdict::Drop => {
                self.trace.push(
                    self.now,
                    TraceEventKind::MessageDropped {
                        id,
                        src,
                        dst,
                        kind: env.short,
                        reason: DropReason::Interceptor,
                    },
                );
                return;
            }
            Verdict::Hold => {
                self.trace.push(
                    self.now,
                    TraceEventKind::MessageHeld {
                        id,
                        src,
                        dst,
                        kind: env.short.clone(),
                    },
                );
                self.held.insert(id, env);
                return;
            }
        };
        match self
            .net
            .offer(src, dst, self.now, &mut self.net_rng, env.bytes, extra)
        {
            SendOutcome::DeliverAt(at) => {
                let dst_incarnation = self.actors[dst.index()].incarnation;
                self.schedule(
                    at,
                    Event::Deliver {
                        env,
                        dst_incarnation,
                    },
                );
            }
            SendOutcome::Queued { at, depth, waited } => {
                // Congestion telemetry, attributed to the sender: queue
                // depth gauge, wait histogram, and — only when the message
                // actually waited — a trace event provenance can blame.
                let component = self.actors[src.index()].msym;
                let depth_sym = self.metrics.sym("net.queue_depth");
                self.metrics
                    .gauge_set_sym(component, depth_sym, depth as i64);
                let wait_sym = self.metrics.sym("net.queue_wait_ns");
                self.metrics.observe_sym(component, wait_sym, waited.0);
                if waited.0 > 0 {
                    self.trace.push(
                        self.now,
                        TraceEventKind::MessageQueued {
                            id,
                            src,
                            dst,
                            kind: env.short.clone(),
                            depth,
                            waited,
                        },
                    );
                }
                let dst_incarnation = self.actors[dst.index()].incarnation;
                self.schedule(
                    at,
                    Event::Deliver {
                        env,
                        dst_incarnation,
                    },
                );
            }
            SendOutcome::Lost(reason) => {
                if reason == DropReason::QueueFull {
                    let component = self.actors[src.index()].msym;
                    let sym = self.metrics.sym("net.queue_dropped");
                    self.metrics.counter_add_sym(component, sym, 1);
                }
                self.trace.push(
                    self.now,
                    TraceEventKind::MessageDropped {
                        id,
                        src,
                        dst,
                        kind: env.short,
                        reason,
                    },
                );
            }
        }
    }
}

impl Drop for World {
    fn drop(&mut self) {
        // Return the large buffers to the per-thread pool, cleared. Dropping
        // the contents happens *before* the pool is borrowed, so payload
        // destructors can never observe the pool mid-mutation.
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();
        let mut event_slab = std::mem::take(&mut self.event_slab);
        event_slab.clear();
        let mut free_slots = std::mem::take(&mut self.free_slots);
        free_slots.clear();
        let mut trace = self.trace.take_buffer();
        trace.clear();
        let mut effects = std::mem::take(&mut self.effects_scratch);
        effects.clear();
        // `try_with` so a world dropped during thread teardown (after the
        // pool's TLS destructor ran) degrades to a plain free.
        let _ = BUFFER_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < BUFFER_POOL_MAX {
                pool.push(WorldBuffers {
                    queue,
                    event_slab,
                    free_slots,
                    trace,
                    effects,
                });
            }
        });
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("seed", &self.seed)
            .field("actors", &self.actors.len())
            .field("queued", &self.queue.len())
            .field("processed", &self.processed)
            .field("held", &self.held.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Actor;

    /// Echoes every `u32` it receives back to the sender, incremented.
    struct Echo {
        received: Vec<u32>,
    }
    impl Actor for Echo {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
            let v = *msg.downcast_ref::<u32>().expect("u32");
            self.received.push(v);
            if v < 3 {
                ctx.send(from, v + 1);
            }
        }
    }

    /// Periodically ticks and counts; volatile count resets on restart.
    struct Ticker {
        ticks: u64,
        period: Duration,
    }
    impl Actor for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
        fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
            self.ticks += 1;
            ctx.annotate("tick", self.ticks.to_string());
            ctx.set_timer(self.period, 0);
        }
        fn on_restart(&mut self, ctx: &mut Ctx) {
            self.ticks = 0; // volatile
            self.on_start(ctx);
        }
    }

    fn two_echoes() -> (World, ActorId, ActorId) {
        let mut w = World::new(WorldConfig::default(), 1);
        let a = w.spawn("a", Echo { received: vec![] });
        let b = w.spawn("b", Echo { received: vec![] });
        (w, a, b)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut w, a, b) = two_echoes();
        w.invoke::<Echo, _>(a, |_, ctx| ctx.send(ctx.id(), 0u32)); // self-send kick
        w.run_until_quiescent(10_000_000);
        // a receives 0, sends 1 to itself (from==a), etc. until 3.
        assert_eq!(w.actor_ref::<Echo>(a).unwrap().received, vec![0, 1, 2, 3]);
        assert!(w.actor_ref::<Echo>(b).unwrap().received.is_empty());
    }

    #[test]
    fn cross_actor_messaging_works() {
        let (mut w, a, b) = two_echoes();
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 1u32));
        w.run_until_quiescent(10_000_000);
        assert_eq!(w.actor_ref::<Echo>(b).unwrap().received, vec![1, 3]);
        assert_eq!(w.actor_ref::<Echo>(a).unwrap().received, vec![2]);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let run = |seed| {
            let mut w = World::new(WorldConfig::default(), seed);
            let a = w.spawn("a", Echo { received: vec![] });
            let b = w.spawn("b", Echo { received: vec![] });
            w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 0u32));
            w.run_until_quiescent(10_000_000);
            w.trace().digest()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should jitter differently");
    }

    #[test]
    fn timers_fire_periodically_and_stop_on_crash() {
        let mut w = World::new(WorldConfig::default(), 3);
        let t = w.spawn(
            "ticker",
            Ticker {
                ticks: 0,
                period: Duration::millis(10),
            },
        );
        w.run_for(Duration::millis(35));
        assert_eq!(w.actor_ref::<Ticker>(t).unwrap().ticks, 3);
        w.crash(t);
        w.run_for(Duration::millis(50));
        assert_eq!(
            w.actor_ref::<Ticker>(t).unwrap().ticks,
            3,
            "no ticks while crashed"
        );
        w.restart(t);
        w.run_for(Duration::millis(25));
        assert_eq!(
            w.actor_ref::<Ticker>(t).unwrap().ticks,
            2,
            "volatile state reset"
        );
        assert_eq!(w.incarnation(t), 1);
    }

    #[test]
    fn messages_to_crashed_actors_are_dropped() {
        let (mut w, a, b) = two_echoes();
        w.crash(b);
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 9u32));
        w.run_until_quiescent(10_000_000);
        assert!(w.actor_ref::<Echo>(b).unwrap().received.is_empty());
        let drops = w.trace().count(|e| {
            matches!(
                &e.kind,
                TraceEventKind::MessageDropped {
                    reason: DropReason::DestCrashed,
                    ..
                }
            )
        });
        assert_eq!(drops, 1);
    }

    #[test]
    fn in_flight_messages_do_not_survive_restart() {
        let (mut w, a, b) = two_echoes();
        // Send while b is alive, then crash+restart b before delivery.
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 9u32));
        w.crash(b);
        w.restart(b);
        w.run_until_quiescent(10_000_000);
        assert!(
            w.actor_ref::<Echo>(b).unwrap().received.is_empty(),
            "message addressed to old incarnation must be dropped"
        );
        let stale = w.trace().count(|e| {
            matches!(
                &e.kind,
                TraceEventKind::MessageDropped {
                    reason: DropReason::Stale,
                    ..
                }
            )
        });
        assert_eq!(stale, 1);
    }

    #[test]
    fn partitions_drop_and_heal_restores() {
        let (mut w, a, b) = two_echoes();
        let p = w.partition(&[a], &[b]);
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 1u32));
        w.run_until_quiescent(10_000_000);
        assert!(w.actor_ref::<Echo>(b).unwrap().received.is_empty());
        w.heal(p);
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 1u32));
        w.run_until_quiescent(20_000_000);
        assert_eq!(w.actor_ref::<Echo>(b).unwrap().received, vec![1, 3]);
    }

    #[test]
    fn interceptor_hold_and_release_replays_to_new_incarnation() {
        let (mut w, a, b) = two_echoes();
        w.set_interceptor(move |env: &Envelope, _t: SimTime| {
            if env.dst == b {
                Verdict::Hold
            } else {
                Verdict::Pass
            }
        });
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 2u32));
        w.run_until_quiescent(10_000_000);
        assert!(w.actor_ref::<Echo>(b).unwrap().received.is_empty());
        assert_eq!(w.held_ids().count(), 1);
        // Restart b, then release: the held message reaches the NEW incarnation.
        w.crash(b);
        w.restart(b);
        w.clear_interceptor();
        w.release_all_held();
        w.run_until_quiescent(20_000_000);
        assert_eq!(w.actor_ref::<Echo>(b).unwrap().received, vec![2]);
    }

    #[test]
    fn interceptor_drop_and_delay() {
        let (mut w, a, b) = two_echoes();
        w.set_interceptor(move |env: &Envelope, _t: SimTime| {
            if env.dst == b {
                Verdict::Drop
            } else {
                Verdict::Pass
            }
        });
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 2u32));
        w.run_until_quiescent(10_000_000);
        assert!(w.actor_ref::<Echo>(b).unwrap().received.is_empty());

        w.set_interceptor(move |env: &Envelope, _t: SimTime| {
            if env.dst == b {
                Verdict::Delay(Duration::millis(100))
            } else {
                Verdict::Pass
            }
        });
        w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 3u32));
        w.run_for(Duration::millis(50));
        assert!(w.actor_ref::<Echo>(b).unwrap().received.is_empty());
        w.run_for(Duration::millis(60));
        assert_eq!(w.actor_ref::<Echo>(b).unwrap().received, vec![3]);
    }

    #[test]
    fn run_until_event_finds_annotations() {
        let mut w = World::new(WorldConfig::default(), 3);
        let _ = w.spawn(
            "ticker",
            Ticker {
                ticks: 0,
                period: Duration::millis(10),
            },
        );
        let hit = w.run_until_event(SimTime(Duration::secs(1).as_nanos()), |e| {
            matches!(&e.kind, TraceEventKind::Annotation { label, data, .. }
                if label == "tick" && data == "3")
        });
        assert!(hit.is_some());
        assert_eq!(w.now().millis(), 30);
    }

    #[test]
    fn run_until_event_times_out_and_advances_clock() {
        let mut w = World::new(WorldConfig::default(), 3);
        let hit = w.run_until_event(SimTime(5_000_000), |_| true);
        assert!(hit.is_none());
        assert_eq!(w.now(), SimTime(5_000_000));
    }

    #[test]
    fn scheduled_faults_fire_at_their_times() {
        let mut w = World::new(WorldConfig::default(), 3);
        let t = w.spawn(
            "ticker",
            Ticker {
                ticks: 0,
                period: Duration::millis(10),
            },
        );
        w.schedule_crash(t, SimTime(Duration::millis(25).as_nanos()));
        w.schedule_restart(t, SimTime(Duration::millis(100).as_nanos()));
        w.run_for(Duration::millis(200));
        // 2 ticks before crash (10, 20), then restart at 100 → ticks at 110..200: 10 ticks.
        assert_eq!(w.actor_ref::<Ticker>(t).unwrap().ticks, 10);
        assert_eq!(w.incarnation(t), 1);
    }

    #[test]
    fn pooled_buffer_reuse_is_digest_transparent() {
        let run = || {
            let mut w = World::new(WorldConfig::default(), 42);
            let a = w.spawn("a", Echo { received: vec![] });
            let b = w.spawn("b", Echo { received: vec![] });
            w.invoke::<Echo, _>(a, move |_, ctx| ctx.send(b, 0u32));
            w.run_until_quiescent(10_000_000);
            (w.trace().digest(), w.trace().to_json(), w.metrics_report())
        };
        // First run grows fresh buffers; dropping the world parks them in
        // the thread-local pool.
        let first = run();
        let pooled = BUFFER_POOL.with(|p| p.borrow().len());
        assert!(pooled >= 1, "drop must return buffers to the pool");
        // Second run draws the recycled buffers and must be byte-identical.
        let second = run();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_names_panic() {
        let mut w = World::new(WorldConfig::default(), 1);
        w.spawn("x", Echo { received: vec![] });
        w.spawn("x", Echo { received: vec![] });
    }

    #[test]
    fn lookup_and_names_round_trip() {
        let (w, a, b) = two_echoes();
        assert_eq!(w.lookup("a"), Some(a));
        assert_eq!(w.lookup("b"), Some(b));
        assert_eq!(w.lookup("zzz"), None);
        assert_eq!(w.name_of(a), "a");
        assert_eq!(w.actor_ids().collect::<Vec<_>>(), vec![a, b]);
    }
}
