//! Message interception — the fault-injection hook.
//!
//! An [`Interceptor`] sees every message the instant it is sent, before the
//! network model runs, and rules on its fate. This is the mechanism behind
//! the paper's §7 perturbations: delaying cache updates (staleness), dropping
//! notifications (observability gaps), and holding events for replay after a
//! restart (time traveling) are all implemented as interceptors in
//! `ph-core::perturb`.

use crate::msg::Envelope;
use crate::time::{Duration, SimTime};

/// The interceptor's ruling on one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Hand the message to the network untouched.
    Pass,
    /// Silently drop it (traced as [`crate::trace::DropReason::Interceptor`]).
    Drop,
    /// Add extra latency on top of whatever the network decides.
    Delay(Duration),
    /// Park the message in the world's held set; it stays there until the
    /// harness calls [`crate::World::release_held`] (or drops it).
    Hold,
}

/// Rules on the fate of messages at send time.
///
/// Implementations must be deterministic: the verdict may depend only on the
/// envelope, the current time and the interceptor's own state.
pub trait Interceptor {
    /// Called once per send, before the network model.
    fn on_send(&mut self, env: &Envelope, now: SimTime) -> Verdict;
}

/// An interceptor that passes everything through (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullInterceptor;

impl Interceptor for NullInterceptor {
    fn on_send(&mut self, _env: &Envelope, _now: SimTime) -> Verdict {
        Verdict::Pass
    }
}

impl<F> Interceptor for F
where
    F: FnMut(&Envelope, SimTime) -> Verdict,
{
    fn on_send(&mut self, env: &Envelope, now: SimTime) -> Verdict {
        self(env, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ActorId, MsgId};
    use crate::msg::AnyMsg;

    fn env() -> Envelope {
        Envelope {
            id: MsgId(0),
            src: ActorId(0),
            dst: ActorId(1),
            sent_at: SimTime::ZERO,
            kind: "test::Msg",
            short: crate::intern::Name::from("Msg"),
            bytes: 0,
            msg: AnyMsg::new(1u8),
        }
    }

    #[test]
    fn null_interceptor_passes() {
        assert_eq!(
            NullInterceptor.on_send(&env(), SimTime::ZERO),
            Verdict::Pass
        );
    }

    #[test]
    fn closures_are_interceptors() {
        let mut count = 0;
        let mut f = |e: &Envelope, _t: SimTime| {
            count += 1;
            if e.kind_short() == "Msg" {
                Verdict::Drop
            } else {
                Verdict::Pass
            }
        };
        assert_eq!(f.on_send(&env(), SimTime::ZERO), Verdict::Drop);
        assert_eq!(count, 1);
    }
}
