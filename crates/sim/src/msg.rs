//! Messages and envelopes.
//!
//! The simulator is payload-agnostic: actors exchange [`AnyMsg`]s, which are
//! type-erased boxes downcast by the receiver. The envelope carries the
//! metadata (sender, destination, send time, a human-readable kind string)
//! that the trace and the perturbation interceptors operate on, so fault
//! injection never needs to understand payload types.

use std::any::Any;

use crate::ids::{ActorId, MsgId};
use crate::intern::Name;
use crate::time::SimTime;

/// A type-erased message payload.
///
/// Payloads must be `Debug` so traces stay human-readable; the
/// [`AnyMsg::downcast_ref`]/[`AnyMsg::downcast`] helpers recover the concrete
/// type on the receiving side.
pub struct AnyMsg(Box<dyn ErasedMsg>);

/// Object-safe bound for message payloads.
trait ErasedMsg: Any + std::fmt::Debug {
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + std::fmt::Debug> ErasedMsg for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl AnyMsg {
    /// Wraps a concrete payload.
    pub fn new<T: Any + std::fmt::Debug>(payload: T) -> AnyMsg {
        AnyMsg(Box::new(payload))
    }

    /// Borrows the payload as `T`, or `None` if the payload has a different
    /// type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        // Explicit deref: the blanket `ErasedMsg` impl also covers
        // `Box<dyn ErasedMsg>`, and plain method syntax would resolve on the
        // box instead of the payload.
        ErasedMsg::as_any(&*self.0).downcast_ref::<T>()
    }

    /// Returns `true` if the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.downcast_ref::<T>().is_some()
    }

    /// Consumes the message, recovering the payload as `T`.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` unchanged if the payload has a different type.
    pub fn downcast<T: Any>(self) -> Result<T, AnyMsg> {
        if self.is::<T>() {
            let any: Box<dyn Any> = ErasedMsg::into_any(self.0);
            Ok(*any.downcast::<T>().expect("type checked above"))
        } else {
            Err(self)
        }
    }
}

impl std::fmt::Debug for AnyMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A message in flight: payload plus routing and tracing metadata.
#[derive(Debug)]
pub struct Envelope {
    /// Unique id of this send.
    pub id: MsgId,
    /// Sending actor.
    pub src: ActorId,
    /// Destination actor.
    pub dst: ActorId,
    /// Logical time at which the send happened.
    pub sent_at: SimTime,
    /// Human-readable payload type name (for traces and interceptor
    /// matching); derived from `std::any::type_name` of the payload.
    pub kind: &'static str,
    /// [`Envelope::kind_short`] interned at send time, so every trace event
    /// about this message shares one allocation.
    pub(crate) short: Name,
    /// Modelled wire size in bytes. Only finite-bandwidth links read it;
    /// `0` (the [`crate::Ctx::send`] default) costs nothing to transmit.
    pub bytes: u64,
    /// The payload itself.
    pub msg: AnyMsg,
}

impl Envelope {
    /// Short form of [`Envelope::kind`]: the path-stripped type name
    /// (`"AppendEntries"` rather than `"ph_store::raft::AppendEntries"`).
    pub fn kind_short(&self) -> &'static str {
        self.kind.rsplit("::").next().unwrap_or(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Foo(u32);
    #[derive(Debug)]
    struct Bar;

    #[test]
    fn downcast_ref_recovers_payload() {
        let m = AnyMsg::new(Foo(7));
        assert_eq!(m.downcast_ref::<Foo>(), Some(&Foo(7)));
        assert!(m.downcast_ref::<Bar>().is_none());
        assert!(m.is::<Foo>());
        assert!(!m.is::<Bar>());
    }

    #[test]
    fn downcast_by_value_round_trips() {
        let m = AnyMsg::new(Foo(9));
        let got = m.downcast::<Foo>().expect("correct type");
        assert_eq!(got, Foo(9));
    }

    #[test]
    fn downcast_wrong_type_returns_original() {
        let m = AnyMsg::new(Foo(9));
        let m = m.downcast::<Bar>().expect_err("wrong type");
        assert_eq!(m.downcast_ref::<Foo>(), Some(&Foo(9)));
    }

    #[test]
    fn kind_short_strips_module_path() {
        let env = Envelope {
            id: MsgId(1),
            src: ActorId(0),
            dst: ActorId(1),
            sent_at: SimTime::ZERO,
            kind: "ph_store::raft::AppendEntries",
            short: Name::from("AppendEntries"),
            bytes: 0,
            msg: AnyMsg::new(Foo(1)),
        };
        assert_eq!(env.kind_short(), "AppendEntries");
    }

    #[test]
    fn debug_renders_payload() {
        let m = AnyMsg::new(Foo(3));
        assert_eq!(format!("{m:?}"), "Foo(3)");
    }
}
