//! Structured run traces.
//!
//! The trace is the ground truth of a simulation: every send, delivery, drop,
//! timer, crash, restart and actor annotation is recorded in order. The
//! partial-history tooling in `ph-core` consumes traces to (a) derive
//! happens-before relations for causality-guided perturbation and (b) give
//! oracles the evidence they report violations with.

use crate::ids::{ActorId, MsgId, TimerId};
use crate::intern::Name;
use crate::time::{Duration, SimTime};

/// Why a message failed to reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The link was partitioned at send time.
    Partitioned,
    /// The network loss model dropped it.
    Loss,
    /// An installed [`crate::Interceptor`] returned [`crate::Verdict::Drop`].
    Interceptor,
    /// The destination was crashed at delivery time.
    DestCrashed,
    /// The destination was crashed between the original delivery time and the
    /// release of a held message.
    Stale,
    /// A finite-bandwidth link's drop-tail queue was at capacity — organic
    /// congestion loss, not an injected fault.
    QueueFull,
}

/// One thing that happened during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An actor was created.
    Spawned {
        /// The new actor.
        actor: ActorId,
        /// Its human-readable name (interned; prints like a `String`).
        name: Name,
    },
    /// An actor sent a message.
    MessageSent {
        /// Message id.
        id: MsgId,
        /// Sender.
        src: ActorId,
        /// Destination.
        dst: ActorId,
        /// Short payload type name (interned; prints like a `String`).
        kind: Name,
    },
    /// A message reached its destination and was handled.
    MessageDelivered {
        /// Message id.
        id: MsgId,
        /// Sender.
        src: ActorId,
        /// Destination.
        dst: ActorId,
        /// Short payload type name (interned; prints like a `String`).
        kind: Name,
    },
    /// A message was lost.
    MessageDropped {
        /// Message id.
        id: MsgId,
        /// Sender.
        src: ActorId,
        /// Destination.
        dst: ActorId,
        /// Short payload type name (interned; prints like a `String`).
        kind: Name,
        /// Why it was lost.
        reason: DropReason,
    },
    /// An interceptor put a message on hold.
    MessageHeld {
        /// Message id.
        id: MsgId,
        /// Sender.
        src: ActorId,
        /// Destination.
        dst: ActorId,
        /// Short payload type name (interned; prints like a `String`).
        kind: Name,
    },
    /// An interceptor delayed a message in flight ([`crate::Verdict::Delay`]).
    /// The message is still expected to arrive, `by` later than the network
    /// alone would have delivered it — the staleness injector's signature.
    MessageDelayed {
        /// Message id.
        id: MsgId,
        /// Sender.
        src: ActorId,
        /// Destination.
        dst: ActorId,
        /// Short payload type name (interned; prints like a `String`).
        kind: Name,
        /// Extra in-flight latency added by the interceptor.
        by: Duration,
    },
    /// A message was admitted to a finite-bandwidth link's queue and had to
    /// wait behind earlier traffic — congestion made it later than
    /// propagation alone would have. Only recorded when `waited > 0`; an
    /// idle queued link delivers without ceremony.
    MessageQueued {
        /// Message id.
        id: MsgId,
        /// Sender.
        src: ActorId,
        /// Destination.
        dst: ActorId,
        /// Short payload type name (interned; prints like a `String`).
        kind: Name,
        /// Queue occupancy at admission (this message included).
        depth: u32,
        /// Time spent queued before transmission began.
        waited: Duration,
    },
    /// A held message was released back into the network.
    MessageReleased {
        /// Message id.
        id: MsgId,
    },
    /// A timer was armed.
    TimerSet {
        /// Owning actor.
        actor: ActorId,
        /// Timer id.
        timer: TimerId,
        /// Caller-chosen tag.
        tag: u64,
        /// When it will fire.
        fire_at: SimTime,
    },
    /// A timer fired.
    TimerFired {
        /// Owning actor.
        actor: ActorId,
        /// Timer id.
        timer: TimerId,
        /// Caller-chosen tag.
        tag: u64,
    },
    /// An actor crashed (volatile state will be lost on restart).
    Crashed {
        /// The crashed actor.
        actor: ActorId,
    },
    /// A crashed actor came back.
    Restarted {
        /// The restarted actor.
        actor: ActorId,
    },
    /// A component-level annotation written via [`crate::Ctx::annotate`].
    Annotation {
        /// The annotating actor.
        actor: ActorId,
        /// Annotation label (namespaced by convention, e.g. `"kubelet.run_pod"`).
        label: Name,
        /// Free-form payload.
        data: String,
    },
    /// A scoped operation opened via [`crate::Ctx::span_begin`]. Spans model
    /// request/reconcile scopes; matching `SpanEnd` events close them
    /// LIFO per `(actor, label)`.
    SpanBegin {
        /// The actor the span belongs to.
        actor: ActorId,
        /// Span label (e.g. `"reconcile"`).
        label: Name,
        /// Free-form detail attached at open time.
        detail: String,
    },
    /// Closes the innermost open span with this label on this actor; the
    /// world also records the span's duration into the actor's
    /// `"<label>.ns"` histogram.
    SpanEnd {
        /// The actor the span belongs to.
        actor: ActorId,
        /// Span label matching the corresponding `SpanBegin`.
        label: Name,
    },
}

/// A trace record: what happened, when, and its position in the total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the run's total order (dense, starting at 0).
    pub seq: u64,
    /// Logical time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The full, ordered record of a simulation run.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates an empty trace on top of a recycled event buffer, keeping its
    /// capacity. Used by the world's trial buffer pool.
    pub(crate) fn with_buffer(mut events: Vec<TraceEvent>) -> Trace {
        events.clear();
        Trace { events }
    }

    /// Surrenders the backing event buffer so its capacity can be reused.
    pub(crate) fn take_buffer(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: TraceEventKind) {
        let seq = self.events.len() as u64;
        self.events.push(TraceEvent { seq, at, kind });
    }

    /// A copy of this trace containing only the events matching `pred`,
    /// with original sequence numbers and timestamps preserved. For
    /// carving a focused export — say, the queue-physics slice of a
    /// congested run — out of a full record; the result is an export
    /// source, not a replayable run.
    pub fn filtered(&self, pred: impl Fn(&TraceEvent) -> bool) -> Trace {
        Trace {
            events: self.events.iter().filter(|e| pred(e)).cloned().collect(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over events in order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// All annotations with the given label, in order, as `(actor, data)`.
    pub fn annotations<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = (ActorId, &'a str)> + 'a {
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceEventKind::Annotation {
                actor,
                label: l,
                data,
            } if l == label => Some((*actor, data.as_str())),
            _ => None,
        })
    }

    /// All annotations from one actor, in order, as `(label, data)`.
    pub fn annotations_of(&self, actor: ActorId) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceEventKind::Annotation {
                actor: a,
                label,
                data,
            } if *a == actor => Some((label.as_str(), data.as_str())),
            _ => None,
        })
    }

    /// Counts events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// A 64-bit order-sensitive digest of the trace; two runs with equal
    /// digests almost certainly behaved identically. Used by determinism
    /// tests and by the harness to deduplicate schedules.
    ///
    /// The hashed bytes are each event's `at.0.to_le_bytes()` followed by
    /// the `format!("{:?}")` rendering of its kind — but rendered through
    /// [`render_kind`] into one reused buffer, because `core::fmt` plus a
    /// fresh `String` per event used to dominate whole-trial wall time.
    pub fn digest(&self) -> u64 {
        // FNV-1a over a stable textual rendering of each event.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        let mut buf: Vec<u8> = Vec::with_capacity(160);
        for e in &self.events {
            eat(&e.at.0.to_le_bytes());
            buf.clear();
            render_kind(&e.kind, &mut buf);
            eat(&buf);
        }
        h
    }

    /// Renders the trace as a JSON array of event objects (hand-rolled to
    /// keep the dependency set minimal).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 2);
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_ns\":{},\"event\":{}}}",
                e.seq,
                e.at.0,
                json_string(&format!("{:?}", e.kind))
            ));
        }
        out.push(']');
        out
    }
}

/// Appends the decimal rendering of `v` to `buf` (no allocation).
fn push_u64(buf: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&tmp[i..]);
}

/// Appends the exact `format!("{:?}", s)` bytes of a `str` to `buf`.
///
/// The fast path covers the strings the sim actually produces (plain
/// printable ASCII); anything needing escapes goes char-by-char through
/// [`char::escape_debug`], matching `str`'s `Debug` impl — which, unlike
/// `char`'s, leaves single quotes unescaped.
fn push_str_debug(buf: &mut Vec<u8>, s: &str) {
    buf.push(b'"');
    if s.bytes()
        .all(|b| (0x20..=0x7e).contains(&b) && b != b'"' && b != b'\\')
    {
        buf.extend_from_slice(s.as_bytes());
    } else {
        let mut utf8 = [0u8; 4];
        for c in s.chars() {
            if c == '\'' {
                buf.push(b'\'');
            } else {
                for esc in c.escape_debug() {
                    buf.extend_from_slice(esc.encode_utf8(&mut utf8).as_bytes());
                }
            }
        }
    }
    buf.push(b'"');
}

/// Appends `ActorId(n)`-style tuple-struct Debug bytes.
fn push_id(buf: &mut Vec<u8>, name: &[u8], v: u64) {
    buf.extend_from_slice(name);
    buf.push(b'(');
    push_u64(buf, v);
    buf.push(b')');
}

/// Streams the byte-exact derived-`Debug` rendering of a kind into `buf`.
///
/// This MUST stay byte-identical to `format!("{:?}", kind)` — the trace
/// digest is defined over those bytes, and replay verification compares
/// digests across builds. `digest_render_matches_derived_debug` pins the
/// equivalence for every variant.
fn render_kind(kind: &TraceEventKind, buf: &mut Vec<u8>) {
    use TraceEventKind::*;
    match kind {
        Spawned { actor, name } => {
            buf.extend_from_slice(b"Spawned { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b", name: ");
            push_str_debug(buf, name);
            buf.extend_from_slice(b" }");
        }
        MessageSent { id, src, dst, kind } => {
            buf.extend_from_slice(b"MessageSent { id: ");
            push_msg_header(buf, *id, *src, *dst, kind);
        }
        MessageDelivered { id, src, dst, kind } => {
            buf.extend_from_slice(b"MessageDelivered { id: ");
            push_msg_header(buf, *id, *src, *dst, kind);
        }
        MessageHeld { id, src, dst, kind } => {
            buf.extend_from_slice(b"MessageHeld { id: ");
            push_msg_header(buf, *id, *src, *dst, kind);
        }
        MessageDelayed {
            id,
            src,
            dst,
            kind,
            by,
        } => {
            buf.extend_from_slice(b"MessageDelayed { id: ");
            push_id(buf, b"MsgId", id.0);
            buf.extend_from_slice(b", src: ");
            push_id(buf, b"ActorId", src.0 as u64);
            buf.extend_from_slice(b", dst: ");
            push_id(buf, b"ActorId", dst.0 as u64);
            buf.extend_from_slice(b", kind: ");
            push_str_debug(buf, kind);
            buf.extend_from_slice(b", by: ");
            push_id(buf, b"Duration", by.0);
            buf.extend_from_slice(b" }");
        }
        MessageDropped {
            id,
            src,
            dst,
            kind,
            reason,
        } => {
            buf.extend_from_slice(b"MessageDropped { id: ");
            push_id(buf, b"MsgId", id.0);
            buf.extend_from_slice(b", src: ");
            push_id(buf, b"ActorId", src.0 as u64);
            buf.extend_from_slice(b", dst: ");
            push_id(buf, b"ActorId", dst.0 as u64);
            buf.extend_from_slice(b", kind: ");
            push_str_debug(buf, kind);
            buf.extend_from_slice(b", reason: ");
            buf.extend_from_slice(match reason {
                DropReason::Partitioned => b"Partitioned".as_slice(),
                DropReason::Loss => b"Loss",
                DropReason::Interceptor => b"Interceptor",
                DropReason::DestCrashed => b"DestCrashed",
                DropReason::Stale => b"Stale",
                DropReason::QueueFull => b"QueueFull",
            });
            buf.extend_from_slice(b" }");
        }
        MessageQueued {
            id,
            src,
            dst,
            kind,
            depth,
            waited,
        } => {
            buf.extend_from_slice(b"MessageQueued { id: ");
            push_id(buf, b"MsgId", id.0);
            buf.extend_from_slice(b", src: ");
            push_id(buf, b"ActorId", src.0 as u64);
            buf.extend_from_slice(b", dst: ");
            push_id(buf, b"ActorId", dst.0 as u64);
            buf.extend_from_slice(b", kind: ");
            push_str_debug(buf, kind);
            buf.extend_from_slice(b", depth: ");
            push_u64(buf, *depth as u64);
            buf.extend_from_slice(b", waited: ");
            push_id(buf, b"Duration", waited.0);
            buf.extend_from_slice(b" }");
        }
        MessageReleased { id } => {
            buf.extend_from_slice(b"MessageReleased { id: ");
            push_id(buf, b"MsgId", id.0);
            buf.extend_from_slice(b" }");
        }
        TimerSet {
            actor,
            timer,
            tag,
            fire_at,
        } => {
            buf.extend_from_slice(b"TimerSet { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b", timer: ");
            push_id(buf, b"TimerId", timer.0);
            buf.extend_from_slice(b", tag: ");
            push_u64(buf, *tag);
            buf.extend_from_slice(b", fire_at: ");
            push_id(buf, b"SimTime", fire_at.0);
            buf.extend_from_slice(b" }");
        }
        TimerFired { actor, timer, tag } => {
            buf.extend_from_slice(b"TimerFired { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b", timer: ");
            push_id(buf, b"TimerId", timer.0);
            buf.extend_from_slice(b", tag: ");
            push_u64(buf, *tag);
            buf.extend_from_slice(b" }");
        }
        Crashed { actor } => {
            buf.extend_from_slice(b"Crashed { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b" }");
        }
        Restarted { actor } => {
            buf.extend_from_slice(b"Restarted { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b" }");
        }
        Annotation { actor, label, data } => {
            buf.extend_from_slice(b"Annotation { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b", label: ");
            push_str_debug(buf, label);
            buf.extend_from_slice(b", data: ");
            push_str_debug(buf, data);
            buf.extend_from_slice(b" }");
        }
        SpanBegin {
            actor,
            label,
            detail,
        } => {
            buf.extend_from_slice(b"SpanBegin { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b", label: ");
            push_str_debug(buf, label);
            buf.extend_from_slice(b", detail: ");
            push_str_debug(buf, detail);
            buf.extend_from_slice(b" }");
        }
        SpanEnd { actor, label } => {
            buf.extend_from_slice(b"SpanEnd { actor: ");
            push_id(buf, b"ActorId", actor.0 as u64);
            buf.extend_from_slice(b", label: ");
            push_str_debug(buf, label);
            buf.extend_from_slice(b" }");
        }
    }
}

/// Shared tail of the `MessageSent`/`Delivered`/`Held` renderings (the
/// three differ only in the variant name).
fn push_msg_header(buf: &mut Vec<u8>, id: MsgId, src: ActorId, dst: ActorId, kind: &str) {
    push_id(buf, b"MsgId", id.0);
    buf.extend_from_slice(b", src: ");
    push_id(buf, b"ActorId", src.0 as u64);
    buf.extend_from_slice(b", dst: ");
    push_id(buf, b"ActorId", dst.0 as u64);
    buf.extend_from_slice(b", kind: ");
    push_str_debug(buf, kind);
    buf.extend_from_slice(b" }");
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One event of every variant, with strings that exercise the escape
    /// fallback: quotes, backslashes, control chars, unicode, combining
    /// (grapheme-extended) marks, and the single quote `str`'s Debug does
    /// NOT escape.
    fn every_kind() -> Vec<TraceEventKind> {
        use TraceEventKind::*;
        let tricky = [
            "plain",
            "",
            "with \"quotes\" and \\backslash\\",
            "tab\tnewline\nnull\0",
            "unicode: héllo ✓ — 日本語",
            "combining: e\u{301} (grapheme-extended)",
            "single 'quotes' stay raw",
        ];
        let mut kinds = Vec::new();
        for (i, s) in tricky.iter().enumerate() {
            let i = i as u64;
            kinds.extend([
                Spawned {
                    actor: ActorId(i as u32),
                    name: (*s).into(),
                },
                MessageSent {
                    id: MsgId(i),
                    src: ActorId(0),
                    dst: ActorId(u32::MAX),
                    kind: (*s).into(),
                },
                MessageDelivered {
                    id: MsgId(u64::MAX),
                    src: ActorId(1),
                    dst: ActorId(2),
                    kind: (*s).into(),
                },
                MessageHeld {
                    id: MsgId(i),
                    src: ActorId(3),
                    dst: ActorId(4),
                    kind: (*s).into(),
                },
                MessageDelayed {
                    id: MsgId(i),
                    src: ActorId(3),
                    dst: ActorId(4),
                    kind: (*s).into(),
                    by: Duration(i * 90_000_000),
                },
                MessageQueued {
                    id: MsgId(i),
                    src: ActorId(3),
                    dst: ActorId(4),
                    kind: (*s).into(),
                    depth: i as u32 + 1,
                    waited: Duration(i * 70_000),
                },
                MessageReleased { id: MsgId(i) },
                TimerSet {
                    actor: ActorId(5),
                    timer: TimerId(i),
                    tag: i * 1000,
                    fire_at: SimTime(u64::MAX - i),
                },
                TimerFired {
                    actor: ActorId(6),
                    timer: TimerId(i),
                    tag: 0,
                },
                Crashed { actor: ActorId(7) },
                Restarted { actor: ActorId(8) },
                Annotation {
                    actor: ActorId(9),
                    label: (*s).into(),
                    data: (*s).to_string(),
                },
                SpanBegin {
                    actor: ActorId(10),
                    label: (*s).into(),
                    detail: (*s).to_string(),
                },
                SpanEnd {
                    actor: ActorId(11),
                    label: (*s).into(),
                },
            ]);
            for reason in [
                DropReason::Partitioned,
                DropReason::Loss,
                DropReason::Interceptor,
                DropReason::DestCrashed,
                DropReason::Stale,
                DropReason::QueueFull,
            ] {
                kinds.push(MessageDropped {
                    id: MsgId(i),
                    src: ActorId(12),
                    dst: ActorId(13),
                    kind: (*s).into(),
                    reason,
                });
            }
        }
        kinds
    }

    /// The digest is defined over `format!("{:?}")` bytes; the streaming
    /// renderer must reproduce them exactly for every variant and every
    /// escape class.
    #[test]
    fn digest_render_matches_derived_debug() {
        for kind in every_kind() {
            let mut buf = Vec::new();
            render_kind(&kind, &mut buf);
            assert_eq!(
                String::from_utf8(buf).unwrap(),
                format!("{kind:?}"),
                "streamed rendering diverged"
            );
        }
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(
            SimTime(1),
            TraceEventKind::Spawned {
                actor: ActorId(0),
                name: "a".into(),
            },
        );
        t.push(
            SimTime(2),
            TraceEventKind::Annotation {
                actor: ActorId(0),
                label: "x".into(),
                data: "one".into(),
            },
        );
        t.push(
            SimTime(3),
            TraceEventKind::Annotation {
                actor: ActorId(1),
                label: "x".into(),
                data: "two".into(),
            },
        );
        t.push(
            SimTime(3),
            TraceEventKind::Annotation {
                actor: ActorId(1),
                label: "y".into(),
                data: "three".into(),
            },
        );
        t
    }

    #[test]
    fn seq_is_dense_and_ordered() {
        let t = sample();
        for (i, e) in t.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn annotation_queries_filter_correctly() {
        let t = sample();
        let xs: Vec<_> = t.annotations("x").collect();
        assert_eq!(xs, vec![(ActorId(0), "one"), (ActorId(1), "two")]);
        let of1: Vec<_> = t.annotations_of(ActorId(1)).collect();
        assert_eq!(of1, vec![("x", "two"), ("y", "three")]);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = sample();
        let mut b = Trace::new();
        // Same events, different order of the two annotations at t=3.
        b.push(
            SimTime(1),
            TraceEventKind::Spawned {
                actor: ActorId(0),
                name: "a".into(),
            },
        );
        b.push(
            SimTime(2),
            TraceEventKind::Annotation {
                actor: ActorId(0),
                label: "x".into(),
                data: "one".into(),
            },
        );
        b.push(
            SimTime(3),
            TraceEventKind::Annotation {
                actor: ActorId(1),
                label: "y".into(),
                data: "three".into(),
            },
        );
        b.push(
            SimTime(3),
            TraceEventKind::Annotation {
                actor: ActorId(1),
                label: "x".into(),
                data: "two".into(),
            },
        );
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), sample().digest());
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn to_json_is_wellformed_array() {
        let t = sample();
        let j = t.to_json();
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert_eq!(j.matches("\"seq\":").count(), 4);
    }

    #[test]
    fn count_applies_predicate() {
        let t = sample();
        let n = t.count(|e| matches!(&e.kind, TraceEventKind::Annotation { .. }));
        assert_eq!(n, 3);
    }
}
