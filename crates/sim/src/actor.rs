//! The actor model: simulated processes and their execution context.
//!
//! An [`Actor`] is a deterministic state machine driven by the [`crate::World`]
//! event loop. Actors never block and never touch wall-clock time or global
//! randomness: every external effect goes through the [`Ctx`] handed to each
//! callback, which is what keeps runs replayable.
//!
//! ## Crashes and restarts
//!
//! A crashed actor receives no messages or timers (in-flight messages to it
//! are dropped, pending timers are cancelled). On restart the world calls
//! [`Actor::on_restart`]; the actor itself decides which of its fields
//! survive — fields it resets model volatile (in-memory) state, fields it
//! keeps model durable (on-disk) state. This mirrors how real components lose
//! their caches (their *partial history*) across a crash while keeping their
//! write-ahead logs.

use std::any::Any;

use crate::ids::{ActorId, TimerId};
use crate::msg::AnyMsg;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};

/// A simulated process.
///
/// All callbacks receive a [`Ctx`] through which the actor sends messages,
/// sets timers, draws randomness and annotates the trace. Callbacks must be
/// deterministic functions of `(actor state, input, ctx.rng())`.
pub trait Actor: Any {
    /// Called once when the actor is spawned (and, by default, again on every
    /// restart via [`Actor::on_restart`]).
    fn on_start(&mut self, ctx: &mut Ctx);

    /// Called for every message delivered to this actor.
    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx);

    /// Called when a timer set via [`Ctx::set_timer`] fires. `tag` is the
    /// caller-chosen discriminator passed at arm time.
    fn on_timer(&mut self, timer: TimerId, tag: u64, ctx: &mut Ctx) {
        let _ = (timer, tag, ctx);
    }

    /// Called when the actor restarts after a crash.
    ///
    /// The default implementation resets nothing and simply re-runs
    /// [`Actor::on_start`]; actors with volatile state override this to clear
    /// it first (modelling the loss of in-memory caches on a crash).
    fn on_restart(&mut self, ctx: &mut Ctx) {
        self.on_start(ctx);
    }
}

/// Object-safe wrapper that adds downcasting to boxed actors.
pub(crate) trait ActorObj: Actor {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Actor> ActorObj for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Deferred side effects produced by an actor callback.
///
/// The world applies these after the callback returns; deferring them keeps
/// the actor borrowed mutably for the whole callback without aliasing the
/// world.
#[derive(Debug)]
pub(crate) enum Effect {
    Send {
        to: ActorId,
        kind: &'static str,
        bytes: u64,
        msg: AnyMsg,
    },
    SetTimer {
        id: TimerId,
        after: Duration,
        tag: u64,
    },
    CancelTimer {
        id: TimerId,
    },
    Annotate {
        label: &'static str,
        data: String,
    },
    CounterAdd {
        name: &'static str,
        delta: u64,
    },
    GaugeSet {
        name: &'static str,
        value: i64,
    },
    Observe {
        name: &'static str,
        value: u64,
    },
    SpanBegin {
        label: &'static str,
        detail: String,
    },
    SpanEnd {
        label: &'static str,
    },
}

/// The execution context handed to every actor callback.
pub struct Ctx<'a> {
    pub(crate) me: ActorId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl Ctx<'_> {
    /// The id of the actor currently executing.
    #[inline]
    pub fn id(&self) -> ActorId {
        self.me
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's deterministic random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `payload` to `to`. Delivery time (or loss) is decided by the
    /// network model and any installed interceptor. The message has no
    /// modelled wire size — use [`Ctx::send_sized`] for traffic that should
    /// contend on finite-bandwidth links.
    pub fn send<T: Any + std::fmt::Debug>(&mut self, to: ActorId, payload: T) {
        self.send_sized(to, payload, 0);
    }

    /// Like [`Ctx::send`], but declares the message's wire size in bytes.
    /// On links with [`crate::LinkConfig::bandwidth`] configured, `bytes`
    /// determines transmission time and queue pressure; elsewhere it is
    /// carried but ignored.
    pub fn send_sized<T: Any + std::fmt::Debug>(&mut self, to: ActorId, payload: T, bytes: u64) {
        self.effects.push(Effect::Send {
            to,
            kind: std::any::type_name::<T>(),
            bytes,
            msg: AnyMsg::new(payload),
        });
    }

    /// Arms a one-shot timer that fires after `after`, invoking
    /// [`Actor::on_timer`] with the returned id and `tag`.
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer { id, after, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Records a structured annotation in the trace, attributed to this actor
    /// at the current time. Oracles and causality analysis read these.
    pub fn annotate(&mut self, label: &'static str, data: impl Into<String>) {
        self.effects.push(Effect::Annotate {
            label,
            data: data.into(),
        });
    }

    /// Adds `delta` to this actor's named counter in the world's metrics
    /// registry.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        self.effects.push(Effect::CounterAdd { name, delta });
    }

    /// Increments this actor's named counter by one.
    pub fn counter_inc(&mut self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Sets this actor's named gauge to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        self.effects.push(Effect::GaugeSet { name, value });
    }

    /// Records `value` into this actor's named histogram (default log-spaced
    /// latency buckets; see [`crate::metrics::DEFAULT_LATENCY_BOUNDS_NS`]).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.effects.push(Effect::Observe { name, value });
    }

    /// Opens a span: a scoped operation recorded in the trace and, once
    /// closed, as a `"<label>.ns"` duration histogram sample. Spans with the
    /// same label nest LIFO and may stay open across callbacks (e.g. a
    /// request opened on send and closed on completion).
    pub fn span_begin(&mut self, label: &'static str, detail: impl Into<String>) {
        self.effects.push(Effect::SpanBegin {
            label,
            detail: detail.into(),
        });
    }

    /// Closes the innermost open span with `label`. Closing a label with no
    /// open span is a no-op (crash/restart can orphan an end).
    pub fn span_end(&mut self, label: &'static str) {
        self.effects.push(Effect::SpanEnd { label });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl Actor for Noop {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, _from: ActorId, _msg: AnyMsg, _ctx: &mut Ctx) {}
    }

    fn with_ctx<R>(f: impl FnOnce(&mut Ctx) -> R) -> (R, Vec<Effect>) {
        let mut rng = SimRng::from_seed(1);
        let mut effects = Vec::new();
        let mut next_timer = 0;
        let mut ctx = Ctx {
            me: ActorId(0),
            now: SimTime(123),
            rng: &mut rng,
            effects: &mut effects,
            next_timer_id: &mut next_timer,
        };
        let r = f(&mut ctx);
        (r, effects)
    }

    #[test]
    fn send_records_type_name_as_kind() {
        let ((), effects) = with_ctx(|ctx| ctx.send(ActorId(1), 42u32));
        match &effects[0] {
            Effect::Send { to, kind, .. } => {
                assert_eq!(*to, ActorId(1));
                assert_eq!(*kind, "u32");
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn timers_get_fresh_ids() {
        let ((a, b), effects) = with_ctx(|ctx| {
            (
                ctx.set_timer(Duration::millis(1), 7),
                ctx.set_timer(Duration::millis(2), 8),
            )
        });
        assert_ne!(a, b);
        assert_eq!(effects.len(), 2);
    }

    #[test]
    fn default_on_timer_and_restart_are_safe() {
        let mut noop = Noop;
        let ((), _) = with_ctx(|ctx| {
            noop.on_timer(TimerId(0), 0, ctx);
            noop.on_restart(ctx);
        });
    }

    #[test]
    fn annotate_captures_label_and_data() {
        let ((), effects) = with_ctx(|ctx| ctx.annotate("decision", "bind pod"));
        match &effects[0] {
            Effect::Annotate { label, data } => {
                assert_eq!(*label, "decision");
                assert_eq!(data, "bind pod");
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }
}
