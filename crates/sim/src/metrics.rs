//! Deterministic run metrics.
//!
//! Components record counters, gauges and fixed-bucket histograms through
//! their [`crate::Ctx`]; the [`crate::World`] owns one [`Metrics`] registry
//! and attributes every sample to the recording actor. Everything here is a
//! pure function of the simulation schedule: no wall-clock time, no
//! allocation-order dependence, and snapshots ([`MetricsReport`]) iterate in
//! `BTreeMap` order — so two runs with the same seed produce *byte-identical*
//! reports, and a report diff is a behavior diff.
//!
//! Histogram bucket bounds are fixed at registration (first observation) and
//! default to [`DEFAULT_LATENCY_BOUNDS_NS`], a log-spaced ladder suited to
//! simulated latencies recorded in nanoseconds.

use std::collections::BTreeMap;

use crate::intern::{Interner, Sym};
use crate::trace::json_string;

/// Default histogram bucket upper bounds, in nanoseconds: 1µs … 10s,
/// log-spaced. Values above the last bound land in the implicit overflow
/// bucket.
pub const DEFAULT_LATENCY_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with total count and sum for mean computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of each bucket, ascending.
    pub bounds: Vec<u64>,
    /// One count per bound, plus a final overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Histogram {
    /// Creates an empty histogram over the given ascending bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds not ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of all observations, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`): the
    /// inclusive upper bound of the bucket containing the `ceil(q * count)`-th
    /// observation, computed purely from integer bucket counts so the result
    /// is deterministic. Observations past the last bound report the last
    /// bound (the histogram records nothing finer). Returns 0 with no
    /// observations.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(q * count) without float rounding surprises at the seam:
        // rank is clamped into [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&b) => b,
                    None => *self.bounds.last().unwrap_or(&0),
                };
            }
        }
        *self.bounds.last().unwrap_or(&0)
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(i64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

/// The live metrics registry, owned by a [`crate::World`].
///
/// Keys are `(component, metric)` name pairs; components are actor names for
/// actor-recorded samples, or harness-chosen labels for samples recorded from
/// outside the message plane (e.g. the scenario runner's view-lag probe).
///
/// Internally the registry keys series by interned [`Sym`] pairs, so the
/// steady-state record path (`*_sym` methods, or the string methods once a
/// name has been seen) allocates nothing and compares integers instead of
/// string pairs. [`Metrics::report`] resolves symbols back to strings, so
/// snapshots are unchanged by the interning.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    interner: Interner,
    values: BTreeMap<(Sym, Sym), MetricValue>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Interns a component or metric name for use with the `*_sym` record
    /// methods. Callers on a hot path should intern once and reuse the
    /// returned [`Sym`].
    pub fn sym(&mut self, s: &str) -> Sym {
        self.interner.intern(s)
    }

    /// Adds `delta` to a counter, creating it at zero first if needed.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn counter_add(&mut self, component: &str, name: &str, delta: u64) {
        let c = self.interner.intern(component);
        let n = self.interner.intern(name);
        self.counter_add_sym(c, n, delta);
    }

    /// [`Metrics::counter_add`] over pre-interned names.
    pub fn counter_add_sym(&mut self, component: Sym, name: Sym, delta: u64) {
        match self
            .values
            .entry((component, name))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => panic!(
                "{}/{} is not a counter: {other:?}",
                self.interner.resolve(component),
                self.interner.resolve(name)
            ),
        }
    }

    /// Sets a gauge to `value`, creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn gauge_set(&mut self, component: &str, name: &str, value: i64) {
        let c = self.interner.intern(component);
        let n = self.interner.intern(name);
        self.gauge_set_sym(c, n, value);
    }

    /// [`Metrics::gauge_set`] over pre-interned names.
    pub fn gauge_set_sym(&mut self, component: Sym, name: Sym, value: i64) {
        match self
            .values
            .entry((component, name))
            .or_insert(MetricValue::Gauge(0))
        {
            MetricValue::Gauge(v) => *v = value,
            other => panic!(
                "{}/{} is not a gauge: {other:?}",
                self.interner.resolve(component),
                self.interner.resolve(name)
            ),
        }
    }

    /// Records a histogram observation, creating the histogram over
    /// [`DEFAULT_LATENCY_BOUNDS_NS`] if needed.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn observe(&mut self, component: &str, name: &str, value: u64) {
        let c = self.interner.intern(component);
        let n = self.interner.intern(name);
        self.observe_sym(c, n, value);
    }

    /// [`Metrics::observe`] over pre-interned names.
    pub fn observe_sym(&mut self, component: Sym, name: Sym, value: u64) {
        match self
            .values
            .entry((component, name))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(&DEFAULT_LATENCY_BOUNDS_NS)))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!(
                "{}/{} is not a histogram: {other:?}",
                self.interner.resolve(component),
                self.interner.resolve(name)
            ),
        }
    }

    /// Snapshots the registry into an immutable, ordered report, resolving
    /// interned keys back to `(component, metric)` strings. The resulting
    /// report is byte-identical to one from a string-keyed registry: the
    /// `BTreeMap` re-sorts by string key regardless of interning order.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            metrics: self
                .values
                .iter()
                .map(|(&(c, n), v)| {
                    (
                        (
                            self.interner.resolve(c).to_string(),
                            self.interner.resolve(n).to_string(),
                        ),
                        v.clone(),
                    )
                })
                .collect(),
        }
    }
}

/// An immutable, deterministically ordered snapshot of a [`Metrics`]
/// registry. Two same-seed runs of the same scenario produce equal reports.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    metrics: BTreeMap<(String, String), MetricValue>,
}

impl MetricsReport {
    /// `true` if no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of distinct `(component, metric)` series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Iterates all series in `(component, metric)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &MetricValue)> {
        self.metrics
            .iter()
            .map(|((c, n), v)| (c.as_str(), n.as_str(), v))
    }

    /// One component's counter, if recorded.
    pub fn counter(&self, component: &str, name: &str) -> Option<u64> {
        match self.get(component, name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// One component's gauge, if recorded.
    pub fn gauge(&self, component: &str, name: &str) -> Option<i64> {
        match self.get(component, name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// One component's histogram, if recorded.
    pub fn histogram(&self, component: &str, name: &str) -> Option<&Histogram> {
        match self.get(component, name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Raw lookup by `(component, metric)`.
    pub fn get(&self, component: &str, name: &str) -> Option<&MetricValue> {
        self.metrics.get(&(component.to_string(), name.to_string()))
    }

    /// Sums a counter across every component that recorded it.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|((_, n), _)| n == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Maximum of a gauge across every component that recorded it.
    pub fn gauge_max(&self, name: &str) -> Option<i64> {
        self.metrics
            .iter()
            .filter(|((_, n), _)| n == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Gauge(g) => Some(*g),
                _ => None,
            })
            .max()
    }

    /// Renders a fixed-width text table, one row per series, in key order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<28} {}\n",
            "component", "metric", "value"
        ));
        for ((c, n), v) in &self.metrics {
            let rendered = match v {
                MetricValue::Counter(x) => x.to_string(),
                MetricValue::Gauge(x) => x.to_string(),
                MetricValue::Histogram(h) => {
                    format!(
                        "count {} sum {} mean {:.1} p50 {} p95 {} p99 {}",
                        h.count,
                        h.sum,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99)
                    )
                }
            };
            out.push_str(&format!("{c:<24} {n:<28} {rendered}\n"));
        }
        out
    }

    /// Renders the report as a deterministic JSON object keyed
    /// `"component/metric"`, in key order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        for (i, ((c, n), v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&format!("{c}/{n}")));
            out.push(':');
            match v {
                MetricValue::Counter(x) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{x}}}");
                }
                MetricValue::Gauge(x) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{x}}}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"bounds\":[",
                        h.count,
                        h.sum,
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99)
                    );
                    for (j, b) in h.bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("],\"counts\":[");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders the report in Prometheus text-exposition format,
    /// deterministically: metric families in name order, series in
    /// component order, fixed label order, no timestamps. Metric names map
    /// into the `ph_` namespace with dots as underscores (counters gain
    /// the conventional `_total` suffix), the recording component becomes
    /// the `component` label, and histograms render as cumulative
    /// `_bucket` lines with an explicit `+Inf` bound — so the same
    /// `net.queue_*` series a test reads programmatically can be scraped
    /// or diffed as text.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        // Prometheus wants every series of a family contiguous under one
        // TYPE header, so regroup the (component, metric)-ordered map by
        // metric name first.
        let mut families: BTreeMap<&str, Vec<(&str, &MetricValue)>> = BTreeMap::new();
        for ((c, n), v) in &self.metrics {
            families
                .entry(n.as_str())
                .or_default()
                .push((c.as_str(), v));
        }
        let mut out = String::new();
        for (name, series) in families {
            let base = format!("ph_{}", name.replace(['.', '-'], "_"));
            match series[0].1 {
                MetricValue::Counter(_) => {
                    let _ = writeln!(out, "# TYPE {base}_total counter");
                    for (c, v) in series {
                        if let MetricValue::Counter(x) = v {
                            let _ = writeln!(out, "{base}_total{{component=\"{c}\"}} {x}");
                        }
                    }
                }
                MetricValue::Gauge(_) => {
                    let _ = writeln!(out, "# TYPE {base} gauge");
                    for (c, v) in series {
                        if let MetricValue::Gauge(x) = v {
                            let _ = writeln!(out, "{base}{{component=\"{c}\"}} {x}");
                        }
                    }
                }
                MetricValue::Histogram(_) => {
                    let _ = writeln!(out, "# TYPE {base} histogram");
                    for (c, v) in series {
                        if let MetricValue::Histogram(h) = v {
                            let mut cumulative = 0u64;
                            for (i, &count) in h.counts.iter().enumerate() {
                                cumulative += count;
                                let le = match h.bounds.get(i) {
                                    Some(b) => b.to_string(),
                                    None => "+Inf".to_string(),
                                };
                                let _ = writeln!(
                                    out,
                                    "{base}_bucket{{component=\"{c}\",le=\"{le}\"}} {cumulative}"
                                );
                            }
                            let _ = writeln!(out, "{base}_sum{{component=\"{c}\"}} {}", h.sum);
                            let _ = writeln!(out, "{base}_count{{component=\"{c}\"}} {}", h.count);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_is_grouped_and_cumulative() {
        let mut m = Metrics::new();
        m.counter_add("b", "net.queue_dropped", 2);
        m.counter_add("a", "net.queue_dropped", 1);
        m.gauge_set("a", "net.queue_depth", 4);
        m.observe("a", "net.queue_wait_ns", 5);
        m.observe("a", "net.queue_wait_ns", 20_000_000_000);
        let text = m.report().to_prometheus();
        let expected = "\
# TYPE ph_net_queue_depth gauge
ph_net_queue_depth{component=\"a\"} 4
# TYPE ph_net_queue_dropped_total counter
ph_net_queue_dropped_total{component=\"a\"} 1
ph_net_queue_dropped_total{component=\"b\"} 2
# TYPE ph_net_queue_wait_ns histogram
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"1000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"10000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"100000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"1000000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"10000000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"100000000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"1000000000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"10000000000\"} 1
ph_net_queue_wait_ns_bucket{component=\"a\",le=\"+Inf\"} 2
ph_net_queue_wait_ns_sum{component=\"a\"} 20000000005
ph_net_queue_wait_ns_count{component=\"a\"} 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn counters_accumulate_and_total_across_components() {
        let mut m = Metrics::new();
        m.counter_add("a", "hits", 2);
        m.counter_add("a", "hits", 3);
        m.counter_add("b", "hits", 10);
        let r = m.report();
        assert_eq!(r.counter("a", "hits"), Some(5));
        assert_eq!(r.counter("b", "hits"), Some(10));
        assert_eq!(r.counter_total("hits"), 15);
        assert_eq!(r.counter("a", "missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut m = Metrics::new();
        m.gauge_set("a", "lag", 7);
        m.gauge_set("a", "lag", 3);
        m.gauge_set("b", "lag", 9);
        let r = m.report();
        assert_eq!(r.gauge("a", "lag"), Some(3));
        assert_eq!(r.gauge_max("lag"), Some(9));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1000); // overflow
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1065);
        assert!((h.mean() - 266.25).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::new(&[1]).mean(), 0.0);
        assert_eq!(Histogram::new(&[1]).quantile(0.5), 0);
    }

    #[test]
    fn quantiles_pick_bucket_upper_bounds() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..90 {
            h.observe(5); // bucket <=10
        }
        for _ in 0..9 {
            h.observe(50); // bucket <=100
        }
        h.observe(5000); // overflow
        assert_eq!(h.quantile(0.50), 10);
        assert_eq!(h.quantile(0.90), 10);
        assert_eq!(h.quantile(0.95), 100);
        assert_eq!(h.quantile(0.99), 100);
        // Overflow observations report the last finite bound.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn report_renderings_carry_quantiles() {
        let mut m = Metrics::new();
        m.observe("c", "lat", 2_000);
        let r = m.report();
        assert!(r.render().contains("p50 10000 p95 10000 p99 10000"));
        assert!(r
            .to_json()
            .contains("\"p50\":10000,\"p95\":10000,\"p99\":10000"));
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let mut m = Metrics::new();
        m.gauge_set("a", "x", 1);
        m.counter_add("a", "x", 1);
    }

    #[test]
    fn report_iterates_in_key_order_and_compares_equal() {
        let mut m1 = Metrics::new();
        m1.counter_add("b", "n", 1);
        m1.gauge_set("a", "g", 2);
        let mut m2 = Metrics::new();
        // Recorded in the opposite order; snapshots must still be equal.
        m2.gauge_set("a", "g", 2);
        m2.counter_add("b", "n", 1);
        assert_eq!(m1.report(), m2.report());
        let report = m1.report();
        let keys: Vec<(&str, &str)> = report.iter().map(|(c, n, _)| (c, n)).collect();
        assert_eq!(keys, vec![("a", "g"), ("b", "n")]);
        assert_eq!(m1.report().len(), 2);
        assert!(!m1.report().is_empty());
    }

    #[test]
    fn json_rendering_is_deterministic_and_wellformed() {
        let mut m = Metrics::new();
        m.counter_add("c", "n", 4);
        m.observe("c", "lat", 2_000);
        let j = m.report().to_json();
        assert_eq!(j, m.report().to_json());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"c/n\":{\"type\":\"counter\",\"value\":4}"));
        assert!(j.contains("\"c/lat\":{\"type\":\"histogram\",\"count\":1,\"sum\":2000"));
    }
}
