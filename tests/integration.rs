//! Cross-crate integration: the §3/§4.2 model applied to live cluster
//! traces — frontiers, staleness, time travel and gap analysis computed
//! from what the components actually observed.

use ph_cluster::objects::{Body, Object, PodPhase};
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_core::causality::CausalGraph;
use ph_core::history::FrontierLog;
use ph_core::perturb::{RandomCrashes, Strategy, Targets, TimeTravelInjector};
use ph_scenarios::common::targets_for;
use ph_sim::{ActorId, Duration, SimTime, TraceEventKind, World, WorldConfig};

/// Extracts a component's view-frontier log from its `view.frontier`
/// annotations.
fn frontier_log(world: &World, actor: ActorId) -> FrontierLog {
    let mut log = FrontierLog::new();
    for e in world.trace().iter() {
        if let TraceEventKind::Annotation {
            actor: a,
            label,
            data,
        } = &e.kind
        {
            if *a == actor && label == "view.frontier" {
                if let Ok(rev) = data.parse::<u64>() {
                    log.record(e.at.nanos(), rev);
                }
            }
        }
    }
    log
}

fn build(seed: u64) -> (World, ph_cluster::topology::ClusterHandle, Targets) {
    let cfg = ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(false),
        ..ClusterConfig::default()
    };
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, SimTime(Duration::secs(1).as_nanos())));
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    let targets = targets_for(&cluster, Duration::secs(5));
    (world, cluster, targets)
}

fn seed_workload(world: &mut World, cluster: &ph_cluster::topology::ClusterHandle) {
    let dl = SimTime(world.now().0 + Duration::secs(10).as_nanos());
    for n in ["node-1", "node-2"] {
        cluster
            .create_object(world, &Object::node(n), dl)
            .expect("node");
    }
    cluster
        .create_object(
            world,
            &Object::new("web", Body::ReplicaSet { replicas: 4 }),
            dl,
        )
        .expect("rs");
}

#[test]
fn frontiers_are_monotone_without_time_travel_injection() {
    let (mut world, cluster, _targets) = build(71);
    seed_workload(&mut world, &cluster);
    world.run_for(Duration::secs(4));
    for &api in &cluster.apiservers {
        let log = frontier_log(&world, api);
        assert!(
            log.samples().len() > 3,
            "apiserver should annotate frontiers"
        );
        assert!(
            log.time_travels().is_empty(),
            "{} traveled in time without injection: {:?}",
            world.name_of(api),
            log.time_travels()
        );
    }
}

#[test]
fn time_travel_injection_makes_a_component_reobserve_its_past() {
    let (mut world, cluster, targets) = build(72);
    seed_workload(&mut world, &cluster);
    world.run_for(Duration::millis(500));

    // Freeze apiserver-2, crash kubelet-1, restart it against the stale
    // upstream.
    let mut injector = TimeTravelInjector::new(
        1,
        0,
        Duration::millis(1800),
        Duration::millis(2500),
        Duration::millis(2700),
        Some(Duration::millis(4000)),
    );
    injector.setup(&mut world, &targets);
    let end = SimTime(Duration::secs(5).as_nanos());
    let mut churned = false;
    while world.now() < end {
        world.run_for(Duration::millis(20));
        if !churned && world.now() >= SimTime(Duration::millis(2000).as_nanos()) {
            // Advance H while apiserver-2 is frozen, so the restarted
            // kubelet's view has somewhere to regress *from*.
            churned = true;
            let dl = SimTime(world.now().0 + Duration::millis(300).as_nanos());
            for i in 0..4 {
                cluster.create_object(
                    &mut world,
                    &Object::pod(format!("extra-{i}"), Some("node-1".into()), None),
                    dl,
                );
            }
        }
        injector.tick(&mut world, &targets);
    }
    injector.teardown(&mut world);

    // The kubelet's frontier regressed: after restarting against the
    // frozen apiserver its first sync is at an older revision than it had
    // reached before the crash — Figure 3b made measurable.
    let kubelet = cluster.kubelets[0];
    let log = frontier_log(&world, kubelet);
    assert!(
        !log.time_travels().is_empty(),
        "expected a frontier regression; samples: {:?}",
        log.samples()
    );
    assert!(log.max_travel_depth() > 0);
}

#[test]
fn random_crashes_leave_cluster_consistent() {
    let (mut world, cluster, targets) = build(73);
    seed_workload(&mut world, &cluster);
    let mut strategy = RandomCrashes {
        seed: 73,
        count: 4,
        down: Duration::millis(300),
    };
    strategy.setup(&mut world, &targets);
    world.run_for(Duration::secs(6));
    strategy.teardown(&mut world);
    world.run_for(Duration::secs(4));

    // Convergence: 4 pods running, kubelet container counts match the
    // ground truth bindings.
    let s = cluster.ground_truth(&world);
    let running: Vec<&Object> = s
        .values()
        .filter(|o| {
            matches!(
                o.body,
                Body::Pod {
                    phase: PodPhase::Running,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(running.len(), 4, "pods lost after random crashes");
    for &k in &cluster.kubelets {
        let kl = world.actor_ref::<ph_cluster::Kubelet>(k).expect("kubelet");
        let truth: std::collections::BTreeSet<String> = running
            .iter()
            .filter(|o| o.pod_node() == Some(kl.node()))
            .map(|o| o.meta.name.clone())
            .collect();
        assert_eq!(
            kl.running_pods(),
            &truth,
            "{} containers diverge from ground truth",
            world.name_of(k)
        );
    }
}

#[test]
fn causality_links_pod_creation_to_kubelet_start() {
    let (mut world, cluster, _targets) = build(74);
    seed_workload(&mut world, &cluster);
    world.run_for(Duration::secs(3));

    let graph = CausalGraph::from_trace(world.trace());
    let starts = graph.decisions("kubelet.pod_start");
    assert!(!starts.is_empty(), "pods should have started");
    for &start in &starts {
        let causes = graph.message_causes_of(start);
        assert!(
            causes.len() > 5,
            "a pod start should be causally downstream of many messages \
             (store replication, watch delivery): got {}",
            causes.len()
        );
    }
    // Decisions of different kubelets are causally independent unless
    // related through the store: at least the *first* starts on each node
    // shouldn't be totally ordered both ways.
    if starts.len() >= 2 {
        let a = starts[0];
        let b = starts[1];
        assert!(
            !(graph.happens_before(a, b) && graph.happens_before(b, a)),
            "happens-before must be antisymmetric"
        );
    }
    let _ = cluster;
}

#[test]
fn trace_json_export_is_consumable() {
    let (mut world, cluster, _targets) = build(75);
    seed_workload(&mut world, &cluster);
    world.run_for(Duration::secs(1));
    let json = world.trace().to_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"seq\":0"));
    assert!(json.contains("Spawned"));
    assert!(json.len() > 10_000, "substantial trace expected");
    let _ = cluster;
}
