//! Witness-guided exploration beats the unguided baseline (EXPERIMENTS.md
//! E6 as a regression test).
//!
//! For every buggy scenario the model checker's minimal witnesses compile
//! (via [`ph_scenarios::witness_bridge`]) into concrete injectors that
//! lead the hunt schedule; the unguided baseline is the generic
//! random-crash / CrashTuner / CoFi cycle with the same per-trial seeds.
//! Guidance must never be worse, and must at least halve the
//! trials-to-first-detection on most scenarios.

use ph_scenarios::scenario_statics;
use ph_scenarios::witness_bridge::{
    first_detection_guided, first_detection_unguided, witness_strategies,
};

/// Trial budget per hunt. An unguided hunt that never detects within the
/// budget is scored as `BUDGET + 1` (a lower bound on its true cost).
const BUDGET: usize = 30;
const SEED: u64 = 1;

#[test]
fn guided_hunt_detects_every_scenario_within_the_prior_window() {
    for e in scenario_statics() {
        let priors = witness_strategies(&e).len();
        let got = first_detection_guided(&e, BUDGET, SEED);
        assert!(
            matches!(got, Some(t) if (t as usize) <= priors),
            "{}: guided hunt should detect within its {} witness prior(s), got {:?}",
            e.name,
            priors,
            got
        );
    }
}

#[test]
fn guided_hunt_is_never_worse_and_halves_trials_on_most_scenarios() {
    let mut halved = 0usize;
    let mut lines = Vec::new();
    for e in scenario_statics() {
        let guided = first_detection_guided(&e, BUDGET, SEED)
            .unwrap_or_else(|| panic!("{}: guided hunt missed within budget", e.name));
        let unguided = first_detection_unguided(&e, BUDGET, SEED).unwrap_or(BUDGET as u32 + 1);
        let line = format!("{:<15} guided={guided:<3} unguided={unguided}", e.name);
        eprintln!("{line}");
        lines.push(line);
        assert!(
            guided <= unguided,
            "{}: guided ({guided}) worse than unguided ({unguided})",
            e.name
        );
        if 2 * guided <= unguided {
            halved += 1;
        }
    }
    // The acceptance bar: ≤50% of the unguided trial count on ≥6 of 8.
    assert!(
        halved >= 6,
        "witness guidance halved trials on only {halved}/8 scenarios:\n{}",
        lines.join("\n")
    );
}
