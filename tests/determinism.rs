//! Determinism: the same seed must reproduce the same run, bit for bit.
//!
//! The whole methodology rests on this — a trial is only evidence if it can
//! be replayed, and the telemetry layer is only trustworthy if it never
//! perturbs or varies across replays. For every registered scenario we run
//! the same (seed, strategy, variant) twice and require identical trace
//! digests AND identical [`ph_sim::MetricsReport`]s (the report derives
//! `Eq`, so equality covers every counter, gauge, and histogram bucket).

use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_scenarios::{
    cass_398, cass_400, cass_402, congestion, hbase_3136, k8s_56261, k8s_59848, node_fencing,
    volume_17, Variant,
};

type RunFn = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type GuidedFn = fn(u64) -> Box<dyn Strategy>;

/// Every registered scenario, with its guided-strategy factory.
fn scenarios() -> Vec<(&'static str, RunFn, GuidedFn)> {
    vec![
        (k8s_59848::NAME, k8s_59848::run, k8s_59848::guided),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
        (cass_400::NAME, cass_400::run, cass_400::guided),
        (cass_402::NAME, cass_402::run, cass_402::guided),
        (hbase_3136::NAME, hbase_3136::run, hbase_3136::guided),
        (node_fencing::NAME, node_fencing::run, node_fencing::guided),
        (congestion::NAME, congestion::run, congestion::guided),
    ]
}

fn run_once(run: RunFn, guided: GuidedFn, seed: u64) -> RunReport {
    let mut strategy = guided(seed);
    run(seed, strategy.as_mut(), Variant::Buggy)
}

#[test]
fn same_seed_same_trace_and_metrics_for_every_scenario() {
    const SEED: u64 = 7;
    for (name, run, guided) in scenarios() {
        let a = run_once(run, guided, SEED);
        let b = run_once(run, guided, SEED);
        assert_eq!(
            a.trace_digest, b.trace_digest,
            "{name}: trace digests diverge across same-seed runs"
        );
        assert_eq!(
            a.trace_events, b.trace_events,
            "{name}: event counts diverge across same-seed runs"
        );
        assert_eq!(
            a.metrics, b.metrics,
            "{name}: metrics reports diverge across same-seed runs"
        );
        assert_eq!(
            a.divergence, b.divergence,
            "{name}: divergence summaries diverge across same-seed runs"
        );
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "{name}: metrics JSON renderings diverge"
        );
    }
}

#[test]
fn different_seeds_change_the_trace() {
    // Sanity check that the digest actually discriminates: perturbation
    // strategies are seeded, so two seeds should not produce identical
    // runs for a fault-injected scenario.
    let a = run_once(k8s_59848::run, k8s_59848::guided, 1);
    let b = run_once(k8s_59848::run, k8s_59848::guided, 2);
    assert_ne!(
        (a.trace_digest, a.trace_events),
        (b.trace_digest, b.trace_events),
        "seeds 1 and 2 produced bit-identical runs"
    );
}

#[test]
fn autoguide_candidates_are_identical_at_any_thread_count() {
    // The §7 automation loop through the parallel pool: the reference
    // trace is deterministic, candidate enumeration is a pure function of
    // it, and the per-candidate re-runs merge by candidate index — so the
    // full findings list (candidates, order, verdicts) must be identical
    // at any thread count.
    use ph_core::perturb::Targets;
    let run = |strategy: &mut dyn Strategy| {
        let (report, trace) = volume_17::run_with_trace(1, strategy, Variant::Buggy);
        let violations = report
            .violations
            .iter()
            .map(|v| v.details.clone())
            .collect::<Vec<String>>();
        (violations, trace)
    };
    let targets_of = |_: &ph_sim::Trace| -> Targets {
        let cfg = ph_cluster::topology::ClusterConfig {
            volume_controller: Some(ph_cluster::controllers::VcMode::MarkOnly),
            ..ph_cluster::topology::ClusterConfig::default()
        };
        let mut world = ph_sim::World::new(ph_sim::WorldConfig::default(), 1);
        let cluster = ph_cluster::topology::spawn_cluster(&mut world, &cfg);
        ph_scenarios::common::targets_for(&cluster, ph_sim::Duration::secs(5))
    };
    let runs: Vec<(Vec<String>, Vec<bool>, usize)> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let (findings, total, _census) = ph_core::autoguide::explore_parallel(
                run,
                targets_of,
                &["vc.release_pvc"],
                2,
                4,
                threads,
            );
            (
                findings.iter().map(|f| f.candidate.to_string()).collect(),
                findings.iter().map(|f| f.violated).collect(),
                total,
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads diverged");
    assert_eq!(runs[1], runs[2], "2 vs 4 threads diverged");
    assert!(!runs[0].0.is_empty(), "no candidates derived");
    // And the pool matches the sequential loop.
    let (seq, seq_total, _) =
        ph_core::autoguide::explore(run, targets_of, &["vc.release_pvc"], 2, 4);
    assert_eq!(
        runs[0].0,
        seq.iter()
            .map(|f| f.candidate.to_string())
            .collect::<Vec<_>>(),
        "pooled vs sequential candidate lists"
    );
    assert_eq!(runs[0].2, seq_total);
}

#[test]
fn blame_chains_are_identical_across_same_seed_runs_and_thread_counts() {
    // The provenance layer rides on the trace, so it inherits the replay
    // guarantee: the same (seed, strategy, variant) must yield the same
    // blame chain — byte for byte in its JSON form — whether the runs fan
    // out over 1 worker or 4. This is what makes `phtool explain --json`
    // diffable in CI.
    use ph_core::provenance::explain;
    const SEED: u64 = 7;
    let entries = ph_scenarios::scenario_statics();
    let explain_all = |threads: usize| -> Vec<String> {
        ph_core::run_indexed(threads, entries.len(), |i| {
            let e = &entries[i];
            let mut strategy = (e.guided)(SEED);
            let (report, trace) = (e.run_traced)(SEED, strategy.as_mut(), Variant::Buggy);
            explain(&trace, &(e.blame)(), &report.violations).to_json()
        })
    };
    let single = explain_all(1);
    let pooled = explain_all(4);
    assert_eq!(single, pooled, "explain JSON diverges across thread counts");
    assert_eq!(single, explain_all(1), "explain JSON diverges across runs");
    for (e, json) in entries.iter().zip(&single) {
        assert!(
            json.contains(&format!("\"class\":\"{}\"", e.pattern.as_str())),
            "{}: chain JSON lost its class: {json}",
            e.name
        );
    }
}

#[test]
fn telemetry_reports_are_populated() {
    // The instrumentation layer must actually produce data: lag samples
    // for every view and watch-delivery counts at the apiservers.
    let r = run_once(k8s_59848::run, k8s_59848::guided, 1);
    assert!(!r.metrics.is_empty(), "metrics report is empty");
    assert!(!r.divergence.is_empty(), "no divergence samples");
    assert!(
        r.metrics.counter_total("apiserver.watch_delivered") > 0,
        "no watch deliveries recorded"
    );
    assert!(
        r.divergence.max_lag() > 0,
        "guided 59848 run should observe a stale view"
    );
}
