//! Golden exports: the congestion run's queue physics, pinned byte for
//! byte in both downstream formats.
//!
//! The emergent congestion run (static scarce capacity, zero
//! perturbations) is fully deterministic, so its exports are too. Two
//! artifacts are compared against checked-in goldens:
//!
//! * the **Chrome-trace** rendering of the run's queue slice — every
//!   `MessageQueued` / queue-full `MessageDropped` event (plus `Spawned`,
//!   which names the timeline threads), exactly what an engineer loads
//!   into Perfetto to look at the congestion story;
//! * the **Prometheus text exposition** of the run's metrics — the
//!   `ph_net_queue_depth` / `ph_net_queue_dropped_total` /
//!   `ph_net_queue_wait_ns` families `phtool run --prom` writes.
//!
//! Regenerate after an intentional exporter or scenario change with
//! `PH_EXPORT_BLESS=1 cargo test -p ph-scenarios --test export_golden`.

use std::fs;
use std::path::{Path, PathBuf};

use ph_scenarios::{congestion, Variant};
use ph_sim::{trace_to_chrome, DropReason, TraceEventKind};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares `got` against `tests/golden/<name>`, or rewrites the golden
/// when `PH_EXPORT_BLESS` is set.
fn check(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("PH_EXPORT_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, got).unwrap();
    } else {
        let want = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {name} (PH_EXPORT_BLESS=1 to create): {e}"));
        assert_eq!(
            got, want,
            "golden mismatch for {name} (PH_EXPORT_BLESS=1 to regenerate)"
        );
    }
}

#[test]
fn congestion_queue_exports_are_pinned() {
    let (report, trace) = congestion::run_emergent(1, Variant::Buggy, true);

    use TraceEventKind as K;
    let slice = trace.filtered(|e| {
        matches!(
            &e.kind,
            K::Spawned { .. }
                | K::MessageQueued { .. }
                | K::MessageDropped {
                    reason: DropReason::QueueFull,
                    ..
                }
        )
    });
    assert!(
        slice.len() > trace.count(|e| matches!(&e.kind, K::Spawned { .. })),
        "the queue slice must contain actual queue events, not just spawns"
    );
    let chrome = trace_to_chrome(&slice);
    // Semantic guards first, so the golden can never silently pin a
    // congestion-free run.
    assert!(
        chrome.contains("\"name\":\"queue ApiWatchEvent\""),
        "chrome export lost its queue-wait instants"
    );
    assert!(
        chrome.contains("\"reason\":\"QueueFull\""),
        "chrome export lost its drop-tail instants"
    );
    check("congestion_queue_slice.chrome.json", &chrome);

    let prom = report.metrics.to_prometheus();
    for family in [
        "# TYPE ph_net_queue_depth gauge",
        "# TYPE ph_net_queue_dropped_total counter",
        "# TYPE ph_net_queue_wait_ns histogram",
    ] {
        assert!(prom.contains(family), "prometheus export lost {family:?}");
    }
    assert_eq!(
        report.metrics.counter_total("net.queue_dropped") > 0,
        prom.contains("ph_net_queue_dropped_total{component=\"apiserver-1\"}"),
        "text exposition must agree with the programmatic counter"
    );
    check("congestion_metrics.prom", &prom);
}
