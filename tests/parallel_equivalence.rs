//! Parallel ≡ sequential: the headline property of the parallel engine.
//!
//! For random `(scenario, strategy, seed, thread count, budget)` tuples,
//! `Explorer::explore_parallel(n)` must produce a [`TrialOutcome`], a
//! [`DetectionMatrix`] rendering, and an example [`RunReport`] JSON
//! **byte-identical** to the sequential `Explorer::explore` — at any
//! thread count. Cases are drawn from a fixed-seed [`SimRng`] (the
//! repo's in-tree property-testing idiom), so the exact case set is
//! pinned forever and runs with zero third-party dependencies.

use ph_core::harness::{DetectionMatrix, Explorer, RunReport, TrialOutcome};
use ph_core::perturb::{
    CoFiPartitions, CrashTunerCrashes, NoFault, RandomCrashes, Strategy, TrafficSurge,
};
use ph_scenarios::{
    cass_398, cass_400, cass_402, congestion, hbase_3136, k8s_56261, k8s_59848, node_fencing,
    volume_17, Variant,
};
use ph_sim::{Duration, SimRng};

type RunFn = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type GuidedFn = fn(u64) -> Box<dyn Strategy>;

fn scenarios() -> Vec<(&'static str, RunFn, GuidedFn)> {
    vec![
        (k8s_59848::NAME, k8s_59848::run, k8s_59848::guided),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
        (cass_400::NAME, cass_400::run, cass_400::guided),
        (cass_402::NAME, cass_402::run, cass_402::guided),
        (hbase_3136::NAME, hbase_3136::run, hbase_3136::guided),
        (node_fencing::NAME, node_fencing::run, node_fencing::guided),
        (congestion::NAME, congestion::run, congestion::guided),
    ]
}

const STRATEGIES: &[&str] = &[
    "guided",
    "random-crash",
    "crashtuner",
    "cofi",
    "traffic-surge",
    "no-fault",
];

fn make_strategy(name: &str, guided: GuidedFn, seed: u64) -> Box<dyn Strategy> {
    match name {
        "guided" => guided(seed),
        "random-crash" => Box::new(RandomCrashes {
            seed,
            count: 3,
            down: Duration::millis(300),
        }),
        "crashtuner" => Box::new(CrashTunerCrashes::new(seed, 0.02, 3, Duration::millis(300))),
        "cofi" => Box::new(CoFiPartitions::new(seed, 0.02, 3, Duration::millis(500))),
        "traffic-surge" => Box::new(TrafficSurge::new(
            0,
            2_000,
            4,
            Duration::millis(1100),
            Some(Duration::millis(3600)),
        )),
        "no-fault" => Box::new(NoFault),
        other => panic!("unknown strategy {other:?}"),
    }
}

/// Field-by-field equality, with the example report compared as the exact
/// JSON bytes `phtool run --json` would emit.
fn assert_outcomes_identical(name: &str, threads: usize, seq: &TrialOutcome, par: &TrialOutcome) {
    let ctx = format!("{name} @ {threads} threads");
    assert_eq!(seq.scenario, par.scenario, "{ctx}: scenario");
    assert_eq!(seq.strategy, par.strategy, "{ctx}: strategy");
    assert_eq!(seq.trials_run, par.trials_run, "{ctx}: trials_run");
    assert_eq!(
        seq.first_violation, par.first_violation,
        "{ctx}: first_violation"
    );
    assert_eq!(seq.total_events, par.total_events, "{ctx}: total_events");
    assert_eq!(seq.total_sim_ns, par.total_sim_ns, "{ctx}: total_sim_ns");
    match (&seq.example, &par.example) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.to_json(), b.to_json(), "{ctx}: example RunReport JSON")
        }
        _ => panic!("{ctx}: example presence diverged"),
    }
}

/// The headline property: random tuples, byte-identical outcomes.
#[test]
fn random_tuples_parallel_equals_sequential() {
    let scenarios = scenarios();
    let mut rng = SimRng::from_seed(0x9A7A_11E1);
    for case in 0..10 {
        let (name, run, guided) = *rng.pick(&scenarios).expect("non-empty");
        let strategy_name = *rng.pick(STRATEGIES).expect("non-empty");
        let explorer = Explorer {
            max_trials: rng.range(1, 4) as u32,
            base_seed: rng.next_u64(),
        };
        let threads = rng.range(2, 5) as usize;
        let scenario_fn = |seed: u64, s: &mut dyn Strategy| run(seed, s, Variant::Buggy);
        let factory = |seed: u64| make_strategy(strategy_name, guided, seed);
        let seq = explorer.explore(name, &scenario_fn, &factory);
        let par = explorer.explore_parallel(threads, name, &scenario_fn, &factory);
        assert_outcomes_identical(
            &format!("case {case}: {name}/{strategy_name}"),
            threads,
            &seq,
            &par,
        );
    }
}

/// Full-matrix equivalence: both paths assemble a [`DetectionMatrix`] over
/// every scenario, and the rendered tables (detection and effort) are
/// byte-identical — the `phtool matrix` payload at any thread count.
#[test]
fn detection_matrix_renders_identically() {
    let explorer = Explorer {
        max_trials: 2,
        base_seed: 77,
    };
    let mut seq_matrix = DetectionMatrix::new();
    let mut par_matrix = DetectionMatrix::new();
    for (name, run, guided) in scenarios() {
        let scenario_fn = |seed: u64, s: &mut dyn Strategy| run(seed, s, Variant::Buggy);
        let factory = |seed: u64| guided(seed);
        seq_matrix.add(explorer.explore(name, &scenario_fn, &factory));
        par_matrix.add(explorer.explore_parallel(3, name, &scenario_fn, &factory));
    }
    assert_eq!(seq_matrix.render(), par_matrix.render());
    assert_eq!(seq_matrix.render_effort(), par_matrix.render_effort());
}

/// The aggregation guard: `total_events` / `total_sim_ns` sums must be
/// taken in trial order in both paths. Runs one no-detection cell (every
/// trial executes, so the sums cover the whole budget) at three thread
/// counts and diffs the rendered effort tables byte for byte.
#[test]
fn effort_table_is_stable_across_thread_counts() {
    let explorer = Explorer {
        max_trials: 4,
        base_seed: 4242,
    };
    let scenario_fn = |seed: u64, s: &mut dyn Strategy| cass_398::run(seed, s, Variant::Buggy);
    let factory = |_seed: u64| Box::new(NoFault) as Box<dyn Strategy>;
    let tables: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut m = DetectionMatrix::new();
            m.add(explorer.explore_parallel(threads, cass_398::NAME, &scenario_fn, &factory));
            m.render_effort()
        })
        .collect();
    assert_eq!(tables[0], tables[1], "1 vs 2 threads");
    assert_eq!(tables[1], tables[2], "2 vs 4 threads");
    // And the parallel tables match the sequential one.
    let mut m = DetectionMatrix::new();
    m.add(explorer.explore(cass_398::NAME, &scenario_fn, &factory));
    assert_eq!(m.render_effort(), tables[0], "sequential vs pooled");
}

/// Early-cancel must report the *lowest* failing trial, not the first to
/// complete: guided strategies fail on trial 1, so any racing worker that
/// finishes a later trial first must lose the merge.
#[test]
fn early_cancel_reports_lowest_failing_trial() {
    let explorer = Explorer {
        max_trials: 6,
        base_seed: 9,
    };
    for threads in [2, 4, 6] {
        let out = explorer.explore_parallel(
            threads,
            k8s_59848::NAME,
            &|seed, s| k8s_59848::run(seed, s, Variant::Buggy),
            &|seed| k8s_59848::guided(seed),
        );
        assert_eq!(out.first_violation, Some(1), "{threads} threads");
        assert_eq!(out.trials_run, 1, "{threads} threads");
        let example = out.example.expect("failing trial keeps its report");
        assert_eq!(example.seed, explorer.trial_seed(0));
    }
}
