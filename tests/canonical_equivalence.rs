//! Canonical-schedule equivalence, property-tested end to end.
//!
//! Three layers, all seeded and deterministic:
//!
//! 1. **Canon laws** (≥120 random schedules per scenario × variant ×
//!    component): `canonicalize` is idempotent, preserves the letter
//!    multiset, maps every commuting permutation of a schedule to the
//!    same representative, and never changes what the schedule *does* to
//!    the abstract model state (`apply_schedule`).
//! 2. **Dynamic runs**: a pair of footprint-disjoint concrete injections
//!    composed in both orders — one canonical class — produces
//!    byte-identical `RunReport` JSON on every scenario, buggy and fixed.
//! 3. **Matrix determinism**: `IndependenceMatrix` JSON is bit-stable
//!    across repeated derivation and across `phtool lint --json
//!    --threads 1/4` invocations.

use ph_core::{canonicalize, plan_class, PlannedOp};
use ph_lint::independence::IndependenceMatrix;
use ph_lint::modelcheck::{apply_schedule, enabled_alphabet, Letter};
use ph_scenarios::{scenario_statics, Variant};
use ph_sim::Duration;

const CASES_PER_COMPONENT: usize = 120;

/// splitmix64 — the same generator the explorer uses for trial seeds.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_schedule(alphabet: &[Letter], rng: &mut u64) -> Vec<Letter> {
    let len = (splitmix(rng) % 7) as usize;
    (0..len)
        .map(|_| alphabet[(splitmix(rng) % alphabet.len() as u64) as usize].clone())
        .collect()
}

/// Applies `swaps` random adjacent transpositions of *independent* pairs —
/// a walk through the schedule's commutation class.
fn commuting_permutation(
    schedule: &[Letter],
    matrix: &IndependenceMatrix,
    swaps: usize,
    rng: &mut u64,
) -> Vec<Letter> {
    let mut out = schedule.to_vec();
    if out.len() < 2 {
        return out;
    }
    for _ in 0..swaps {
        let i = 1 + (splitmix(rng) % (out.len() as u64 - 1)) as usize;
        if matrix.independent(&out[i - 1], &out[i]) {
            out.swap(i - 1, i);
        }
    }
    out
}

fn sorted(mut letters: Vec<Letter>) -> Vec<Letter> {
    letters.sort();
    letters
}

#[test]
fn canonicalization_laws_hold_on_every_scenario_alphabet() {
    let mut rng = 0xE9u64;
    for entry in scenario_statics() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            for summary in (entry.summaries)(variant) {
                let alphabet = enabled_alphabet(&summary);
                if alphabet.is_empty() {
                    continue;
                }
                let matrix = IndependenceMatrix::derive(&summary);
                for case in 0..CASES_PER_COMPONENT {
                    let schedule = random_schedule(&alphabet, &mut rng);
                    let canon = canonicalize(&schedule, &matrix);
                    let ctx = || {
                        format!(
                            "{}/{} {variant} case {case}: {schedule:?} -> {canon:?}",
                            entry.name, summary.component
                        )
                    };
                    // Idempotent, multiset-preserving.
                    assert_eq!(canonicalize(&canon, &matrix), canon, "{}", ctx());
                    assert_eq!(sorted(schedule.clone()), sorted(canon.clone()), "{}", ctx());
                    // Every commuting permutation lands on the same
                    // representative (the class really is a class).
                    let sibling = commuting_permutation(&schedule, &matrix, 8, &mut rng);
                    assert_eq!(canonicalize(&sibling, &matrix), canon, "{}", ctx());
                    // And the representative drives the abstract model to
                    // the same state — swapping independent letters is
                    // semantically invisible, which is exactly what lets
                    // the explorer skip non-canonical duplicates.
                    assert_eq!(
                        apply_schedule(&summary, &schedule),
                        apply_schedule(&summary, &canon),
                        "{}",
                        ctx()
                    );
                }
            }
        }
    }
}

#[test]
fn plan_class_is_invariant_under_commuting_permutations() {
    // Concrete planned ops with disjoint footprints: every interleaving
    // of the cache-hold and the component-cut is one class; same-view
    // reorderings and anchor changes split it.
    let hold = PlannedOp::new(Letter::DelayCache("cache:0".into()), "w1");
    let cut = PlannedOp::new(Letter::DropNotification("component:0".into()), "w2");
    let surge = PlannedOp::new(Letter::TrafficSurge("cache:0".into()), "w3");
    let ab = plan_class(&[hold.clone(), cut.clone()]);
    assert_eq!(ab, plan_class(&[cut.clone(), hold.clone()]));
    assert_ne!(
        plan_class(&[hold.clone(), surge.clone()]),
        plan_class(&[surge, hold])
    );
    let moved = PlannedOp::new(Letter::DelayCache("cache:0".into()), "other");
    assert_ne!(ab, plan_class(&[moved, cut]));
}

#[test]
fn commuting_injection_orders_produce_byte_identical_reports() {
    use ph_core::perturb::Strategy;
    use ph_scenarios::strategies::{
        Compose, EventSelector, HoldMatching, PartitionComponent, TargetRef,
    };

    // A hold on cache 0 and a partition of component 0: disjoint views,
    // so the two compositions are one canonical class — and must be one
    // behavior, byte for byte, on every scenario and variant.
    let hold = || {
        Box::new(HoldMatching::new(
            TargetRef::Cache(0),
            EventSelector::key("zzz-untouched-key"),
            Duration::millis(100),
            None,
        )) as Box<dyn Strategy>
    };
    let cut = || {
        Box::new(PartitionComponent::new(
            0,
            Duration::millis(200),
            Duration::millis(450),
        )) as Box<dyn Strategy>
    };
    let mut rng = 0xCAFEu64;
    for entry in scenario_statics() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            for _ in 0..2 {
                let seed = splitmix(&mut rng);
                let mut ab = Compose::new("pair", vec![hold(), cut()]);
                let mut ba = Compose::new("pair", vec![cut(), hold()]);
                assert_eq!(
                    ab.planned_schedule().map(|ops| plan_class(&ops)),
                    ba.planned_schedule().map(|ops| plan_class(&ops)),
                    "{}: the pair must be one canonical class",
                    entry.name
                );
                let ra = (entry.run)(seed, &mut ab, variant);
                let rb = (entry.run)(seed, &mut ba, variant);
                assert_eq!(
                    ra.to_json(),
                    rb.to_json(),
                    "{} {variant} seed {seed}: commuting orders diverged",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn independence_matrix_json_is_deterministic() {
    for entry in scenario_statics() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            for summary in (entry.summaries)(variant) {
                let a = IndependenceMatrix::derive(&summary).to_json();
                let b = IndependenceMatrix::derive(&summary).to_json();
                assert_eq!(a, b, "{}/{}", entry.name, summary.component);
            }
        }
    }
}

#[test]
fn phtool_lint_json_is_thread_count_invariant() {
    let bin = env!("CARGO_BIN_EXE_phtool");
    let run = |threads: &str| {
        let out = std::process::Command::new(bin)
            .args(["lint", "--json", "--threads", threads])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("spawning phtool");
        let code = out.status.code();
        assert!(
            code == Some(0) || code == Some(3),
            "phtool lint exited {code:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let one = run("1");
    assert!(!one.is_empty());
    assert_eq!(one, run("1"), "same invocation diverged");
    assert_eq!(one, run("4"), "--threads 1 vs 4 diverged");
    // The independence section is present and carries per-pair
    // justifications.
    let text = String::from_utf8(one).unwrap();
    assert!(text.contains("\"independence\":["));
    assert!(text.contains("\"why\":"));
}
