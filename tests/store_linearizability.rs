//! Store-level correctness under faults, and the §3 model connection:
//! watch streams must be partial histories of `H`.

use ph_core::history::{Change, ChangeOp, History, PartialHistory};
use ph_sim::{Duration, SimRng, SimTime, World, WorldConfig};
use ph_store::client::{BasicClient, Completion};
use ph_store::kv::KvEvent;
use ph_store::node::{AutoCompact, StoreNodeConfig};
use ph_store::{
    spawn_store_cluster, OpResult, ReadLevel, Revision, StoreClient, StoreClientConfig, StoreNode,
    Value,
};

fn setup(seed: u64) -> (World, ph_store::StoreCluster, ph_sim::ActorId) {
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
    let client = StoreClient::new(StoreClientConfig::new(cluster.nodes.clone()));
    let c = world.spawn("client", BasicClient::new(client, Duration::millis(50)));
    cluster
        .wait_for_leader(&mut world, SimTime(Duration::secs(2).as_nanos()))
        .expect("leader");
    (world, cluster, c)
}

/// Converts a store event stream into `ph-core` model changes.
fn to_changes(events: &[std::rc::Rc<KvEvent>]) -> Vec<Change> {
    events
        .iter()
        .map(|e| Change {
            seq: e.revision().0,
            entity: e.key().as_str().to_string(),
            op: match e.as_ref() {
                KvEvent::Put { kv, .. } if kv.version == 1 => ChangeOp::Create,
                KvEvent::Put { kv, .. } => ChangeOp::Update(kv.version),
                KvEvent::Delete { .. } => ChangeOp::Delete,
            },
        })
        .collect()
}

#[test]
fn acknowledged_writes_survive_repeated_leader_crashes() {
    let (mut world, cluster, c) = setup(61);
    let mut acknowledged = Vec::new();
    for round in 0..5 {
        // Write a key and wait for the ack.
        let key = format!("k{round}");
        let req = {
            let key = key.clone();
            world.invoke::<BasicClient, _>(c, move |bc, ctx| {
                bc.client.put(key, Value::from_static(b"v"), ctx)
            })
        };
        let mut done = false;
        for _ in 0..400 {
            world.run_for(Duration::millis(20));
            if let Some(r) = world.actor_ref::<BasicClient>(c).unwrap().result_of(req) {
                r.clone().expect("write must eventually succeed");
                done = true;
                break;
            }
        }
        assert!(done, "write {round} never completed");
        acknowledged.push(key);
        // Kill the current leader; a new one must take over.
        if let Some(leader) = cluster.leader(&world) {
            world.crash(leader);
            world.run_for(Duration::millis(400));
            world.restart(leader);
            world.run_for(Duration::millis(200));
        }
    }
    // Every acknowledged write is present in a linearizable read.
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.read("k", ReadLevel::Linearizable, ctx)
    });
    let mut found = None;
    for _ in 0..400 {
        world.run_for(Duration::millis(20));
        if let Some(r) = world.actor_ref::<BasicClient>(c).unwrap().result_of(req) {
            found = Some(r.clone().expect("read"));
            break;
        }
    }
    match found.expect("final read") {
        OpResult::Read { kvs, .. } => {
            let keys: Vec<String> = kvs.iter().map(|kv| kv.key.as_str().to_string()).collect();
            for k in &acknowledged {
                assert!(keys.contains(k), "acknowledged {k} lost; have {keys:?}");
            }
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn replicas_converge_to_identical_state_after_faults() {
    let (mut world, cluster, c) = setup(62);
    let mut rng = SimRng::from_seed(62);
    // Random workload with a mid-run partition and node restart.
    for i in 0..30 {
        let key = format!("key{}", rng.below(10));
        let del = rng.chance(0.3);
        world.invoke::<BasicClient, _>(c, move |bc, ctx| {
            if del {
                bc.client.delete(key, ph_store::msgs::Expect::Any, ctx);
            } else {
                bc.client.put(key, Value::from_static(b"x"), ctx);
            }
        });
        world.run_for(Duration::millis(30));
        if i == 10 {
            let p = world.partition(&[cluster.nodes[2]], &cluster.nodes[..2]);
            world.run_for(Duration::millis(300));
            world.heal(p);
        }
        if i == 20 {
            world.crash(cluster.nodes[1]);
            world.run_for(Duration::millis(200));
            world.restart(cluster.nodes[1]);
        }
    }
    // Let everything settle, then compare replica states.
    world.run_for(Duration::secs(2));
    let states: Vec<_> = cluster
        .nodes
        .iter()
        .map(|&n| {
            let node = world.actor_ref::<StoreNode>(n).expect("node");
            (node.mvcc().range("").0, node.mvcc().revision())
        })
        .collect();
    assert_eq!(states[0], states[1], "node 0 vs 1 diverged");
    assert_eq!(states[1], states[2], "node 1 vs 2 diverged");
    assert!(states[0].1 > Revision::ZERO);
}

#[test]
fn watch_stream_is_a_partial_history_of_h() {
    let (mut world, cluster, c) = setup(63);
    // Watch everything from revision 0 on the client.
    let watch =
        world.invoke::<BasicClient, _>(c, |bc, ctx| bc.client.watch("", Revision::ZERO, ctx));
    world.run_for(Duration::millis(100));
    // A churny workload.
    for i in 0..20 {
        let key = format!("obj{}", i % 5);
        let del = i % 4 == 3;
        world.invoke::<BasicClient, _>(c, move |bc, ctx| {
            if del {
                bc.client.delete(key, ph_store::msgs::Expect::Any, ctx);
            } else {
                bc.client.put(key, Value::from_static(b"x"), ctx);
            }
        });
        world.run_for(Duration::millis(40));
    }
    world.run_for(Duration::millis(500));

    // Ground truth H from the leader's retained event log.
    let leader = cluster.leader(&world).expect("leader");
    let node = world.actor_ref::<StoreNode>(leader).expect("node");
    let truth = node
        .mvcc()
        .events_since(Revision::ZERO)
        .expect("uncompacted");
    let mut h = History::new();
    for change in to_changes(&truth) {
        let seq = h.append(change.entity.clone(), change.op);
        assert_eq!(seq, change.seq, "H must be dense in revisions");
    }

    // The client's observed stream must be a partial history of H: a
    // subsequence, order preserved, nothing fabricated (§3).
    let observed = world
        .actor_ref::<BasicClient>(c)
        .expect("client")
        .watch_events(watch);
    assert!(!observed.is_empty());
    let mut view = PartialHistory::new();
    for change in to_changes(&observed) {
        view.observe(change);
    }
    assert!(
        view.is_partial_of(&h),
        "watch stream violated the partial-history invariant"
    );
    // With no faults it is in fact the complete recent history.
    assert_eq!(view.len(), h.len());
}

#[test]
fn follower_watch_stream_is_partial_history_even_under_faults() {
    let (mut world, cluster, c) = setup(64);
    // A second client watching via a follower, which we will disturb.
    let leader = cluster.leader(&world).expect("leader");
    let follower_idx = cluster
        .nodes
        .iter()
        .position(|&n| n != leader)
        .expect("follower");
    let mut cfg = StoreClientConfig::new(cluster.nodes.clone());
    cfg.affinity = Some(follower_idx);
    let c2 = world.spawn(
        "watcher",
        BasicClient::new(StoreClient::new(cfg), Duration::millis(50)),
    );
    let watch =
        world.invoke::<BasicClient, _>(c2, |bc, ctx| bc.client.watch("", Revision::ZERO, ctx));
    world.run_for(Duration::millis(100));

    let follower = cluster.nodes[follower_idx];
    for i in 0..20 {
        let key = format!("obj{}", i % 5);
        world.invoke::<BasicClient, _>(c, move |bc, ctx| {
            bc.client.put(key, Value::from_static(b"x"), ctx);
        });
        world.run_for(Duration::millis(40));
        if i == 8 {
            // Crash the serving follower mid-stream; the watcher must
            // fail over and resume.
            world.crash(follower);
            world.run_for(Duration::millis(300));
            world.restart(follower);
        }
    }
    world.run_for(Duration::secs(2));

    let leader = cluster.leader(&world).expect("leader");
    let node = world.actor_ref::<StoreNode>(leader).expect("node");
    let truth = node
        .mvcc()
        .events_since(Revision::ZERO)
        .expect("uncompacted");
    let mut h = History::new();
    for change in to_changes(&truth) {
        h.append(change.entity.clone(), change.op);
    }
    let observed = world
        .actor_ref::<BasicClient>(c2)
        .expect("watcher")
        .watch_events(watch);
    let mut view = PartialHistory::new();
    for change in to_changes(&observed) {
        view.observe(change);
    }
    assert!(
        view.is_partial_of(&h),
        "failover watch stream must remain a subsequence of H (no replays, \
         no reordering)"
    );
}

#[test]
fn watch_replay_after_compaction_errors_instead_of_skipping() {
    // A watcher whose stream breaks while the history window rolls
    // forward must either resume gap-free (the replay window still covers
    // its frontier) or be cancelled loudly as compacted — it must never
    // silently skip the compacted gap. This is the sim-level counterpart
    // of the `events_since` window property tests in ph-store.
    let cfg = StoreNodeConfig {
        autocompact: Some(AutoCompact {
            keep: 5,
            interval: Duration::millis(100),
        }),
        ..StoreNodeConfig::default()
    };
    let mut world = World::new(WorldConfig::default(), 65);
    let cluster = spawn_store_cluster(&mut world, 3, cfg);
    let client = StoreClient::new(StoreClientConfig::new(cluster.nodes.clone()));
    let c = world.spawn("client", BasicClient::new(client, Duration::millis(50)));
    cluster
        .wait_for_leader(&mut world, SimTime(Duration::secs(2).as_nanos()))
        .expect("leader");

    // Register the watch before any history exists, then churn enough
    // that the retained window rolls far past revision 1, crashing the
    // serving node mid-stream so the client must reconnect and replay.
    let watch =
        world.invoke::<BasicClient, _>(c, |bc, ctx| bc.client.watch("", Revision::ZERO, ctx));
    world.run_for(Duration::millis(100));
    let serving = world
        .actor_ref::<BasicClient>(c)
        .expect("client")
        .client
        .watch_state(watch)
        .expect("registered")
        .node;
    for i in 0..40 {
        let key = format!("obj{}", i % 5);
        world.invoke::<BasicClient, _>(c, move |bc, ctx| {
            bc.client.put(key, Value::from_static(b"x"), ctx);
        });
        world.run_for(Duration::millis(40));
        if i == 15 {
            world.crash(serving);
            // Keep the node down across several compaction intervals so
            // the window genuinely rolls while the stream is dead.
            world.run_for(Duration::millis(400));
            world.restart(serving);
        }
    }
    world.run_for(Duration::secs(2));

    let bc = world.actor_ref::<BasicClient>(c).expect("client");
    let observed = bc.watch_events(watch);
    let compacted_notice = bc
        .completions
        .iter()
        .any(|x| matches!(x, Completion::WatchCompacted { watch: w } if *w == watch));

    // Whatever happened, the stream the client *did* see is in strict
    // revision order with no replays.
    let revs: Vec<u64> = observed.iter().map(|e| e.revision().0).collect();
    assert!(
        revs.windows(2).all(|w| w[0] < w[1]),
        "watch stream reordered or replayed: {revs:?}"
    );
    // And any gap in it must have been surfaced as a compaction cancel,
    // never skipped silently.
    let has_gap = revs.windows(2).any(|w| w[1] > w[0] + 1);
    if has_gap {
        assert!(
            compacted_notice,
            "stream skipped revisions {revs:?} without a WatchCompacted notice"
        );
    }
    assert!(!observed.is_empty(), "watch saw nothing at all");
}
