//! Blame-chain provenance: dynamic class vs static witness class, and
//! byte-identical explanations across same-seed runs and thread counts.
//!
//! For every buggy scenario under its guided injection, the backward trace
//! slicer ([`ph_core::provenance::explain`]) must classify the violation
//! with the same §4.2 class the scenario documents (its `PATTERN`, which
//! `static_dynamic_agreement` already ties to the model checker's
//! witnesses) — the end-to-end check that static prediction and dynamic
//! provenance tell one story.

use ph_core::provenance::explain;
use ph_scenarios::{scenario_statics, Variant};

#[test]
fn blame_class_matches_the_static_pattern_for_every_scenario() {
    for e in scenario_statics() {
        let mut strategy = (e.guided)(1);
        let (report, trace) = (e.run_traced)(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "{}: guided buggy run must violate", e.name);
        let chain = explain(&trace, &(e.blame)(), &report.violations);
        assert_eq!(
            chain.class,
            e.pattern,
            "{}: dynamic blame class {} disagrees with the static class {}\nrationale: {}\n{}",
            e.name,
            chain.class,
            e.pattern,
            chain.rationale,
            chain.render()
        );
        // The chain is non-trivial, and the report summary agrees.
        let summary = report.blame.expect("failing run carries a blame summary");
        assert_eq!(summary.class, chain.class, "{}", e.name);
        assert_eq!(summary.injected, chain.injected, "{}", e.name);
        if chain.class == ph_lint::summary::PatternClass::CongestionStaleness {
            // The defining property of the emergent class: the guided
            // strategy reshapes link capacity but injects nothing — every
            // artifact in the chain is the queue's own queue-delay or
            // queue-drop, which count as emergent, not injected.
            assert_eq!(
                chain.injected, 0,
                "{}: a traffic surge must not count as injection",
                e.name
            );
            assert!(
                !chain.links.is_empty(),
                "{}: emergent queue artifacts must be causally implicated",
                e.name
            );
        } else {
            assert!(
                chain.injected > 0,
                "{}: guided injection must leave artifacts",
                e.name
            );
            assert!(
                chain.in_chain > 0,
                "{}: at least one injected artifact must be causally implicated",
                e.name
            );
        }
    }
}

#[test]
fn explanations_are_byte_identical_across_same_seed_runs() {
    for e in scenario_statics() {
        let json = |_: ()| {
            let mut strategy = (e.guided)(9);
            let (report, trace) = (e.run_traced)(9, strategy.as_mut(), Variant::Buggy);
            explain(&trace, &(e.blame)(), &report.violations).to_json()
        };
        assert_eq!(json(()), json(()), "{}", e.name);
    }
}

#[test]
fn blame_summaries_are_identical_across_thread_counts() {
    use ph_core::harness::Explorer;
    // One representative per §4.2 class keeps the test fast.
    for name in ["k8s-59848", "volume-ctrl-17", "hbase-3136"] {
        let e = scenario_statics()
            .into_iter()
            .find(|e| e.name == name)
            .expect("scenario");
        let explorer = Explorer {
            max_trials: 3,
            base_seed: 5,
        };
        let run =
            |seed: u64, s: &mut dyn ph_core::perturb::Strategy| (e.run)(seed, s, Variant::Buggy);
        let guided = e.guided;
        let factory = move |seed: u64| guided(seed);
        let seq = explorer.explore(name, &run, &factory);
        let par4 = explorer.explore_parallel(4, name, &run, &factory);
        let b1 = seq.example.as_ref().and_then(|r| r.blame);
        let b4 = par4.example.as_ref().and_then(|r| r.blame);
        assert_eq!(b1, b4, "{name}: blame summary must not depend on threads");
        assert_eq!(seq.trial_sim_ns, par4.trial_sim_ns, "{name}");
    }
}
