//! Exhaustive-vs-reduced model-check equivalence over every scenario
//! component — the acceptance pin for the partial-order reduction.
//!
//! For each of the 9 scenarios, buggy and fixed, every focal component's
//! summary is checked under both expansions: verdicts, witness bytes and
//! epoch-safety proofs must be identical, the reduced run must never do
//! more expansion work, and across the buggy components the reduction
//! must cut `states_expanded` by ≥2× on a healthy majority (the ratio
//! per component is printed under `--nocapture`).

use ph_lint::modelcheck::{model_check, model_check_exhaustive, ActionVerdict, ModelCheckReport};
use ph_scenarios::{scenario_statics, Variant};

/// The verdict-and-witness payload both expansions must agree on byte for
/// byte (the report header legitimately differs in `states_*` and
/// `reduction`).
fn actions_payload(report: &ModelCheckReport) -> String {
    let mut s = String::new();
    for a in &report.actions {
        s.push_str(&a.action);
        match &a.verdict {
            ActionVerdict::EpochSafe => s.push_str(":epoch-safe;"),
            ActionVerdict::Hazardous(ws) => {
                for w in ws {
                    s.push_str(&w.to_json());
                }
                s.push(';');
            }
        }
    }
    s
}

#[test]
fn reduced_model_check_is_equivalent_and_cheaper_on_every_scenario() {
    let mut cells = 0usize;
    let mut halved = 0usize;
    for entry in scenario_statics() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            for summary in (entry.summaries)(variant) {
                let reduced = model_check(&summary);
                let full = model_check_exhaustive(&summary);
                assert_eq!(
                    actions_payload(&reduced),
                    actions_payload(&full),
                    "{} {:?} {}: witnesses diverge between expansions",
                    entry.name,
                    variant,
                    summary.component
                );
                assert_eq!(reduced.is_epoch_safe(), full.is_epoch_safe());
                assert!(
                    reduced.states_expanded <= full.states_expanded,
                    "{} {:?} {}: reduction did more work",
                    entry.name,
                    variant,
                    summary.component
                );
                if variant == Variant::Buggy {
                    cells += 1;
                    if reduced.states_expanded * 2 <= full.states_expanded {
                        halved += 1;
                    }
                    println!(
                        "{:<14} {:<20} exhaustive={:>7} reduced={:>6} ratio={:.1}",
                        entry.name,
                        summary.component,
                        full.states_expanded,
                        reduced.states_expanded,
                        full.states_expanded as f64 / reduced.states_expanded.max(1) as f64
                    );
                }
            }
        }
    }
    println!("{halved}/{cells} buggy components at >=2x reduction");
    assert!(cells >= 9, "expected at least one component per scenario");
    // The ISSUE 8 acceptance bar: >=2x fewer expansions on >=6 of 9.
    assert!(
        halved * 9 >= cells * 6,
        "reduction halved work on only {halved}/{cells} buggy components"
    );
}
