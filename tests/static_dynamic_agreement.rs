//! Static/dynamic agreement over all nine scenarios (the acceptance
//! gate of the hazard analysis).
//!
//! For every scenario the symbolic model checker must produce a minimal
//! hazard witness of the documented §4.2 class for the buggy variant's
//! access summaries and prove the fixed variant's epoch-safe — and the
//! dynamic explorer must confirm both verdicts: the guided run on the
//! buggy variant detects a violation, the same injection on the fixed
//! variant stays clean. One [`CrossCheckTable`] holds all four columns;
//! `all_agree()` is the theorem.
//!
//! The file also pins the determinism contract of the checker itself:
//! the same IR yields byte-identical witness JSON across repeated
//! in-process runs and across any worker count of the parallel runner —
//! and the IR↔source conformance pass reports zero drift on the real
//! `ph-cluster` tree.

use std::collections::BTreeSet;

use ph_core::crosscheck::CrossCheckTable;
use ph_core::parallel::run_indexed;
use ph_lint::modelcheck::model_check_all;
use ph_scenarios::{scenario_statics, Variant};

/// Builds the full table: static verdicts from the model checker (via
/// [`ph_scenarios::static_crosscheck`], the same source `phtool lint`
/// renders), dynamic verdicts from one guided trial per variant (seed 1 —
/// every scenario's tuned injection is deterministic and seed-stable).
fn full_table() -> CrossCheckTable {
    let mut table = ph_scenarios::static_crosscheck();
    for (row, e) in table.rows.iter_mut().zip(scenario_statics()) {
        assert_eq!(row.scenario, e.name, "row order must match scenario order");
        let mut buggy_strategy = (e.guided)(1);
        let buggy_report = (e.run)(1, buggy_strategy.as_mut(), Variant::Buggy);
        let mut fixed_strategy = (e.guided)(1);
        let fixed_report = (e.run)(1, fixed_strategy.as_mut(), Variant::Fixed);
        row.dynamic_buggy_detected = Some(buggy_report.failed());
        row.dynamic_fixed_clean = Some(!fixed_report.failed());
    }
    table
}

#[test]
fn static_analysis_agrees_with_dynamic_exploration_on_all_scenarios() {
    let table = full_table();
    assert_eq!(table.rows.len(), 9, "all nine scenarios must be wired");
    for row in &table.rows {
        assert!(
            row.buggy_classes().contains(&row.expected),
            "{}: static pass missed the documented class {} (flagged: {:?})",
            row.scenario,
            row.expected,
            row.buggy_classes()
        );
        assert!(
            row.fixed_hazards.is_empty(),
            "{}: fixed variant statically flagged: {:?}",
            row.scenario,
            row.fixed_hazards
        );
        assert!(
            !row.buggy_witnesses.is_empty(),
            "{}: model checker produced no witness for the buggy variant",
            row.scenario
        );
        assert_eq!(
            row.dynamic_buggy_detected,
            Some(true),
            "{}: guided dynamic run failed to detect the buggy variant",
            row.scenario
        );
        assert_eq!(
            row.dynamic_fixed_clean,
            Some(true),
            "{}: fixed variant violated dynamically",
            row.scenario
        );
    }
    assert!(table.all_agree(), "\n{}", table.render_text());
}

#[test]
fn static_only_table_from_the_library_agrees() {
    // `phtool lint` renders exactly this table; keep its verdict pinned.
    let table = ph_scenarios::static_crosscheck();
    assert_eq!(table.rows.len(), 9);
    assert!(table.all_static_agree(), "\n{}", table.render_text());
    let json = table.to_json();
    assert!(json.contains("\"all_static_agree\":true"));
    assert!(json.contains("\"witnesses\":["));
}

#[test]
fn model_checker_witnesses_the_documented_class_and_proves_fixed_safe() {
    for e in scenario_statics() {
        let buggy = model_check_all(&(e.summaries)(Variant::Buggy));
        let classes: BTreeSet<_> = buggy
            .iter()
            .flat_map(|r| r.witnesses())
            .map(|w| w.class)
            .collect();
        assert!(
            classes.contains(&e.pattern),
            "{}: no minimal witness of class {} (witnessed: {:?})",
            e.name,
            e.pattern,
            classes
        );
        let fixed = model_check_all(&(e.summaries)(Variant::Fixed));
        for r in &fixed {
            assert!(
                r.is_epoch_safe(),
                "{}: fixed component {} not proved epoch-safe:\n{}",
                e.name,
                r.component,
                r.to_json()
            );
        }
    }
}

/// All nine scenarios' buggy-variant model-check reports as one JSON
/// blob, produced across `threads` workers of the deterministic runner.
fn witness_blob(threads: usize) -> String {
    let entries = scenario_statics();
    run_indexed(threads, entries.len(), |i| {
        model_check_all(&(entries[i].summaries)(Variant::Buggy))
            .iter()
            .map(|r| r.to_json())
            .collect::<Vec<_>>()
            .join("\n")
    })
    .join("\n")
}

#[test]
fn witness_json_is_byte_identical_across_runs_and_thread_counts() {
    // Two in-process runs: the checker has no hidden state.
    let first = witness_blob(1);
    let second = witness_blob(1);
    assert_eq!(first, second, "repeated runs must agree byte-for-byte");
    // Worker count must be invisible: `--threads 1` vs N.
    for threads in [2, 4, 8] {
        assert_eq!(
            first,
            witness_blob(threads),
            "witness JSON diverged at {threads} threads"
        );
    }
    // Sanity: the blob actually carries witnesses for every scenario.
    assert!(first.matches("\"verdict\":\"hazardous\"").count() >= 9);
}

#[test]
fn conformance_pass_reports_zero_drift_on_the_real_tree() {
    // `phtool check` runs exactly this scan; keep the tree clean.
    let cluster_src = concat!(env!("CARGO_MANIFEST_DIR"), "/../cluster/src");
    let scans =
        ph_lint::conformance::scan_dir(std::path::Path::new(cluster_src), "crates/cluster/src")
            .expect("cluster sources must be readable");
    assert!(
        !scans.is_empty(),
        "scanner found no sources under {cluster_src}"
    );
    let declared = ph_cluster::topology::declared_access_summaries();
    assert_eq!(declared.len(), 8, "every component must declare a summary");
    let findings = ph_lint::conformance::check_conformance(&scans, &declared);
    let unsuppressed: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        unsuppressed.is_empty(),
        "IR drift against the real tree:\n{}",
        unsuppressed
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
