//! Static/dynamic agreement over all eight scenarios (the acceptance
//! gate of the hazard analysis).
//!
//! For every scenario the static pass must flag the buggy variant's
//! access summaries with the documented §4.2 class and leave the fixed
//! variant's summaries clean — and the dynamic explorer must confirm
//! both verdicts: the guided run on the buggy variant detects a
//! violation, the same injection on the fixed variant stays clean. One
//! [`CrossCheckTable`] holds all four columns; `all_agree()` is the
//! theorem.

use ph_core::crosscheck::{CrossCheckRow, CrossCheckTable};
use ph_lint::summary::check_summary;
use ph_scenarios::{scenario_statics, Variant};

/// Builds the full table: static verdicts from the access summaries,
/// dynamic verdicts from one guided trial per variant (seed 1 — every
/// scenario's tuned injection is deterministic and seed-stable).
fn full_table() -> CrossCheckTable {
    let rows = scenario_statics()
        .into_iter()
        .map(|e| {
            let buggy_hazards: Vec<_> = (e.summaries)(Variant::Buggy)
                .iter()
                .flat_map(check_summary)
                .collect();
            let fixed_hazards: Vec<_> = (e.summaries)(Variant::Fixed)
                .iter()
                .flat_map(check_summary)
                .collect();
            let mut buggy_strategy = (e.guided)(1);
            let buggy_report = (e.run)(1, buggy_strategy.as_mut(), Variant::Buggy);
            let mut fixed_strategy = (e.guided)(1);
            let fixed_report = (e.run)(1, fixed_strategy.as_mut(), Variant::Fixed);
            CrossCheckRow {
                scenario: e.name.to_string(),
                expected: e.pattern,
                buggy_hazards,
                fixed_hazards,
                dynamic_buggy_detected: Some(buggy_report.failed()),
                dynamic_fixed_clean: Some(!fixed_report.failed()),
            }
        })
        .collect();
    CrossCheckTable { rows }
}

#[test]
fn static_analysis_agrees_with_dynamic_exploration_on_all_scenarios() {
    let table = full_table();
    assert_eq!(table.rows.len(), 8, "all eight scenarios must be wired");
    for row in &table.rows {
        assert!(
            row.buggy_classes().contains(&row.expected),
            "{}: static pass missed the documented class {} (flagged: {:?})",
            row.scenario,
            row.expected,
            row.buggy_classes()
        );
        assert!(
            row.fixed_hazards.is_empty(),
            "{}: fixed variant statically flagged: {:?}",
            row.scenario,
            row.fixed_hazards
        );
        assert_eq!(
            row.dynamic_buggy_detected,
            Some(true),
            "{}: guided dynamic run failed to detect the buggy variant",
            row.scenario
        );
        assert_eq!(
            row.dynamic_fixed_clean,
            Some(true),
            "{}: fixed variant violated dynamically",
            row.scenario
        );
    }
    assert!(table.all_agree(), "\n{}", table.render_text());
}

#[test]
fn static_only_table_from_the_library_agrees() {
    // `phtool lint` renders exactly this table; keep its verdict pinned.
    let table = ph_scenarios::static_crosscheck();
    assert_eq!(table.rows.len(), 8);
    assert!(table.all_static_agree(), "\n{}", table.render_text());
    let json = table.to_json();
    assert!(json.contains("\"all_static_agree\":true"));
}
