//! The §7 detection matrix as a regression test.
//!
//! For every bug in the paper: the guided (pattern-tuned) perturbation
//! must detect it within a single trial on the buggy variant, must NOT
//! fire on the fixed variant, and the no-fault control must stay clean.
//! This is the executable form of the paper's claim that "our tool has
//! reproduced two known bugs in Kubernetes … and detected three new bugs
//! in a Kubernetes controller for Cassandra".

use ph_core::harness::{DetectionMatrix, Explorer, RunReport};
use ph_core::perturb::{NoFault, Strategy};
use ph_scenarios::{
    cass_398, cass_400, cass_402, hbase_3136, k8s_56261, k8s_59848, node_fencing, volume_17,
    Variant,
};

type ScenarioRun = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type Guided = fn(u64) -> Box<dyn Strategy>;

fn all_scenarios() -> Vec<(&'static str, ScenarioRun, Guided)> {
    vec![
        (
            k8s_59848::NAME,
            k8s_59848::run as ScenarioRun,
            k8s_59848::guided as Guided,
        ),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
        (cass_400::NAME, cass_400::run, cass_400::guided),
        (cass_402::NAME, cass_402::run, cass_402::guided),
        (hbase_3136::NAME, hbase_3136::run, hbase_3136::guided),
        (node_fencing::NAME, node_fencing::run, node_fencing::guided),
    ]
}

#[test]
fn guided_injection_detects_every_bug_first_trial() {
    let explorer = Explorer {
        max_trials: 3,
        base_seed: 100,
    };
    let mut matrix = DetectionMatrix::new();
    for (name, run, guided) in all_scenarios() {
        let outcome = explorer.explore(
            name,
            &|seed, strategy| run(seed, strategy, Variant::Buggy),
            &|seed| guided(seed),
        );
        assert!(
            outcome.detected(),
            "{name}: guided strategy failed to detect within 3 trials"
        );
        assert_eq!(
            outcome.first_violation,
            Some(1),
            "{name}: guided strategy should hit on trial 1"
        );
        matrix.add(outcome);
    }
    let table = matrix.render();
    assert_eq!(table.matches("✓ 1").count(), 8, "{table}");
}

#[test]
fn fixed_variants_survive_every_guided_injection() {
    for (name, run, guided) in all_scenarios() {
        for seed in [100, 101] {
            let mut strategy = guided(seed);
            let report = run(seed, strategy.as_mut(), Variant::Fixed);
            assert!(
                report.violations.is_empty(),
                "{name} fixed variant violated under guided injection (seed {seed}): {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn no_fault_control_is_clean_on_buggy_variants() {
    for (name, run, _) in all_scenarios() {
        let mut strategy = NoFault;
        let report = run(100, &mut strategy, Variant::Buggy);
        assert!(
            report.violations.is_empty(),
            "{name} violated without any fault injection: {:?}",
            report.violations
        );
    }
}

#[test]
fn reports_carry_reproduction_evidence() {
    let mut strategy = k8s_59848::guided(100);
    let report = k8s_59848::run(100, strategy.as_mut(), Variant::Buggy);
    assert!(report.failed());
    assert_eq!(report.scenario, k8s_59848::NAME);
    assert_eq!(report.seed, 100);
    assert!(report.trace_events > 100, "trace should be substantial");
    assert!(report.sim_time.0 > 0);
    // The same seed reproduces the identical run.
    let mut strategy = k8s_59848::guided(100);
    let again = k8s_59848::run(100, strategy.as_mut(), Variant::Buggy);
    assert_eq!(report.trace_digest, again.trace_digest);
}
