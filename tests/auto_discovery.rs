//! The §7 automation loop, end-to-end on the real stack: the
//! causality-guided auto-explorer must *discover* real bugs from nothing
//! but a fault-free reference trace and the components' decision
//! annotations — no hand-tuned selectors, no scenario knowledge.

use ph_core::autoguide::{candidates, explore, Candidate, CandidateStrategy};
use ph_core::perturb::{NoFault, Strategy, Targets};
use ph_scenarios::common::targets_for;
use ph_scenarios::{k8s_56261, volume_17, Variant};
use ph_sim::Duration;

#[test]
fn auto_explorer_discovers_the_volume_controller_bug() {
    // The explorer knows only: (a) how to run the workload, (b) which
    // annotations are decisions, (c) which message kinds carry view
    // updates. It does NOT know which object, which component, or which
    // notification matters.
    let run = |strategy: &mut dyn Strategy| {
        let (report, trace) = volume_17::run_with_trace(1, strategy, Variant::Buggy);
        let violations = report
            .violations
            .iter()
            .map(|v| v.details.clone())
            .collect();
        (violations, trace)
    };
    let targets_of = |_: &ph_sim::Trace| -> Targets {
        // Rebuild topology knowledge exactly as the runner derives it.
        // Actor ids are deterministic for a fixed topology, so a throwaway
        // build yields the same map the run sees.
        let cfg = ph_cluster::topology::ClusterConfig {
            volume_controller: Some(ph_cluster::controllers::VcMode::MarkOnly),
            ..ph_cluster::topology::ClusterConfig::default()
        };
        let mut world = ph_sim::World::new(ph_sim::WorldConfig::default(), 1);
        let cluster = ph_cluster::topology::spawn_cluster(&mut world, &cfg);
        targets_for(&cluster, Duration::secs(5))
    };

    let (findings, total, _census) = explore(
        run,
        targets_of,
        &["vc.release_pvc"], // the decision whose causes get perturbed
        4,                   // nearest causes per decision
        12,                  // candidate budget
    );
    assert!(total >= 2, "expected several candidates, got {total}");
    let hits: Vec<_> = findings.iter().filter(|f| f.violated).collect();
    assert!(
        !hits.is_empty(),
        "the auto-explorer failed to find the leak; findings: {:#?}",
        findings
            .iter()
            .map(|f| (f.candidate.to_string(), f.violated))
            .collect::<Vec<_>>()
    );
    // And the finding is the real one: a leaked PVC.
    assert!(hits
        .iter()
        .any(|f| f.violations.iter().any(|v| v.contains("leaked"))));
}

#[test]
fn auto_explorer_discovers_the_scheduler_bug() {
    let run = |strategy: &mut dyn Strategy| {
        let (report, trace) = k8s_56261::run_with_trace(1, strategy, Variant::Buggy);
        let violations = report
            .violations
            .iter()
            .map(|v| v.details.clone())
            .collect();
        (violations, trace)
    };
    let targets_of = |_: &ph_sim::Trace| -> Targets {
        let cfg = ph_cluster::topology::ClusterConfig {
            scheduler: Some(false),
            rs_controller: Some(false),
            ..ph_cluster::topology::ClusterConfig::default()
        };
        let mut world = ph_sim::World::new(ph_sim::WorldConfig::default(), 1);
        let cluster = ph_cluster::topology::spawn_cluster(&mut world, &cfg);
        targets_for(&cluster, Duration::secs(6))
    };

    let (findings, _total, _census) = explore(
        run,
        targets_of,
        &["scheduler.bind"],
        12, // deep enough to reach the node-deletion notification
        40,
    );
    let hits: Vec<_> = findings.iter().filter(|f| f.violated).collect();
    assert!(
        !hits.is_empty(),
        "the auto-explorer failed to wedge the scheduler; candidates tried: {:?}",
        findings
            .iter()
            .map(|f| f.candidate.to_string())
            .collect::<Vec<_>>()
    );
    // The real 56261 manifestation is among the finds: a pod bound to the
    // ghost node.
    assert!(
        hits.iter()
            .any(|f| f.violations.iter().any(|v| v.contains("nonexistent node"))),
        "expected a ghost-node binding among: {:#?}",
        hits.iter().map(|f| &f.violations).collect::<Vec<_>>()
    );
}

#[test]
fn candidates_are_replayable_across_runs() {
    // The positional encoding only works if the reference prefix replays
    // identically: same candidate, same run, same digest.
    let mut nofault = NoFault;
    let (_, reference) = {
        let (r, t) = volume_17::run_with_trace(1, &mut nofault, Variant::Buggy);
        (r, t)
    };
    let cfg = ph_cluster::topology::ClusterConfig {
        volume_controller: Some(ph_cluster::controllers::VcMode::MarkOnly),
        ..ph_cluster::topology::ClusterConfig::default()
    };
    let mut world = ph_sim::World::new(ph_sim::WorldConfig::default(), 1);
    let cluster = ph_cluster::topology::spawn_cluster(&mut world, &cfg);
    let targets = targets_for(&cluster, Duration::secs(5));
    let cands = candidates(&reference, &targets, &["vc.release_pvc"], 2, 300);
    let Some(c) = cands
        .iter()
        .find(|c| matches!(c, Candidate::DropNth { .. }))
    else {
        panic!("no drop candidates: {cands:?}");
    };
    let d1 = {
        let mut s = CandidateStrategy::new(c.clone());
        volume_17::run(1, &mut s, Variant::Buggy).trace_digest
    };
    let d2 = {
        let mut s = CandidateStrategy::new(c.clone());
        volume_17::run(1, &mut s, Variant::Buggy).trace_digest
    };
    assert_eq!(d1, d2);
}
