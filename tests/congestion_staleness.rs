//! Load-emergent staleness: the acceptance gate for the queueing network
//! model.
//!
//! Both tests run the congestion scenario with **no strategy at all**
//! ([`NoFault`] — zero injected perturbations); the only difference is the
//! *static* modeled capacity of the apiserver→scheduler link relative to
//! the churn workload's offered load:
//!
//! * below capacity (offered load ≪ bandwidth), the run must be clean —
//!   no violation and not a single drop-tail loss; the network model adds
//!   latency, never semantics;
//! * past capacity, a staleness violation must *emerge* from queue
//!   physics alone, and the backward blame slicer must classify it as
//!   `congestion-staleness` — the same class the symbolic model checker
//!   predicts from the scenario's static access summaries. One story,
//!   three observers: static witness, dynamic oracle, provenance chain.

use ph_core::provenance::explain;
use ph_lint::modelcheck::model_check_all;
use ph_lint::summary::PatternClass;
use ph_scenarios::{congestion, Variant};

#[test]
fn below_capacity_the_network_only_adds_latency() {
    let (report, trace) = congestion::run_emergent(1, Variant::Buggy, false);
    assert!(
        report.violations.is_empty(),
        "ample capacity must stay clean: {:?}",
        report.violations
    );
    assert_eq!(
        report.metrics.counter_total("net.queue_dropped"),
        0,
        "ample capacity must not overflow any drop-tail queue"
    );
    use ph_sim::TraceEventKind as K;
    assert!(
        !trace
            .iter()
            .any(|e| matches!(&e.kind, K::MessageDropped { reason, .. }
                if *reason == ph_sim::DropReason::QueueFull)),
        "no queue-full drop may appear in the trace below capacity"
    );
}

#[test]
fn past_capacity_staleness_emerges_and_is_classified_as_congestion() {
    let (report, trace) = congestion::run_emergent(1, Variant::Buggy, true);

    // Dynamic: the oracle sees pods wedged on the ghost node, with zero
    // perturbations injected.
    assert!(
        report.failed(),
        "offered load past capacity must wedge the buggy scheduler"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.details.contains("node-2") || v.details.contains("stuck")),
        "{:?}",
        report.violations
    );
    assert!(
        report.metrics.counter_total("net.queue_dropped") > 0,
        "the emergent run must show real drop-tail losses"
    );

    // Provenance: the blame chain reaches the same class, from queue
    // artifacts alone (nothing was injected, so nothing counts as such).
    let chain = explain(&trace, &congestion::blame_spec(), &report.violations);
    assert_eq!(
        chain.class,
        PatternClass::CongestionStaleness,
        "{}",
        chain.rationale
    );
    assert_eq!(
        chain.injected, 0,
        "a NoFault run cannot have injected artifacts"
    );
    assert!(
        !chain.links.is_empty(),
        "emergent queue artifacts must appear in the chain"
    );

    // Static: the model checker predicts the same class from the
    // scenario's access summaries — no run needed.
    let witnessed: Vec<PatternClass> =
        model_check_all(&congestion::access_summaries(Variant::Buggy))
            .iter()
            .flat_map(|r| r.witnesses())
            .map(|w| w.class)
            .collect();
    assert!(
        witnessed.contains(&chain.class),
        "static witnesses {witnessed:?} must include the dynamic class {}",
        chain.class
    );
}
