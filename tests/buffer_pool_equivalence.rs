//! Buffer-pool transparency: trial-pool reuse must be invisible in every
//! observable output.
//!
//! `ph-sim` keeps a per-thread free list of world buffers (event queue,
//! trace storage, effect scratch) so back-to-back trials reuse warmed-up
//! capacity instead of reallocating. Only *capacity* may survive the round
//! trip — a run that draws recycled buffers must produce byte-identical
//! results to one on a fresh thread whose pool has never been touched.
//! This suite pins that for every registered scenario: trace digest, event
//! count, oracle verdicts, metrics report (and its JSON rendering), and
//! the divergence summary.

use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_scenarios::{
    cass_398, cass_400, cass_402, hbase_3136, k8s_56261, k8s_59848, node_fencing, volume_17,
    Variant,
};

type RunFn = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type GuidedFn = fn(u64) -> Box<dyn Strategy>;

/// Every registered scenario, with its guided-strategy factory.
fn scenarios() -> Vec<(&'static str, RunFn, GuidedFn)> {
    vec![
        (k8s_59848::NAME, k8s_59848::run, k8s_59848::guided),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
        (cass_400::NAME, cass_400::run, cass_400::guided),
        (cass_402::NAME, cass_402::run, cass_402::guided),
        (hbase_3136::NAME, hbase_3136::run, hbase_3136::guided),
        (node_fencing::NAME, node_fencing::run, node_fencing::guided),
    ]
}

fn run_once(run: RunFn, guided: GuidedFn, seed: u64, variant: Variant) -> RunReport {
    let mut strategy = guided(seed);
    run(seed, strategy.as_mut(), variant)
}

/// Runs on a brand-new thread, guaranteeing an untouched buffer pool.
fn run_fresh(run: RunFn, guided: GuidedFn, seed: u64, variant: Variant) -> RunReport {
    std::thread::spawn(move || run_once(run, guided, seed, variant))
        .join()
        .expect("fresh-pool run panicked")
}

fn assert_reports_identical(name: &str, variant: Variant, fresh: &RunReport, pooled: &RunReport) {
    assert_eq!(
        fresh.trace_digest, pooled.trace_digest,
        "{name} ({variant:?}): trace digest differs between fresh and pooled buffers"
    );
    assert_eq!(
        fresh.trace_events, pooled.trace_events,
        "{name} ({variant:?}): event count differs"
    );
    assert_eq!(
        fresh.violations, pooled.violations,
        "{name} ({variant:?}): oracle verdicts differ"
    );
    assert_eq!(
        fresh.sim_time, pooled.sim_time,
        "{name} ({variant:?}): end time differs"
    );
    assert_eq!(
        fresh.metrics, pooled.metrics,
        "{name} ({variant:?}): metrics report differs"
    );
    assert_eq!(
        fresh.metrics.to_json(),
        pooled.metrics.to_json(),
        "{name} ({variant:?}): metrics JSON rendering differs"
    );
    assert_eq!(
        fresh.divergence, pooled.divergence,
        "{name} ({variant:?}): divergence summary differs"
    );
}

/// For every scenario: a run on a virgin pool equals a run that recycles
/// the buffers of two earlier trials (of *different* scenarios among them,
/// since the pool is shared across everything a thread runs).
#[test]
fn pooled_and_fresh_runs_are_identical_for_every_scenario() {
    const SEED: u64 = 0xB0F;
    for (name, run, guided) in scenarios() {
        let fresh = run_fresh(run, guided, SEED, Variant::Buggy);
        // Warm this thread's pool — every iteration after the first also
        // inherits buffers recycled from previous scenarios' worlds.
        let warm = run_once(run, guided, SEED, Variant::Buggy);
        let pooled = run_once(run, guided, SEED, Variant::Buggy);
        assert_reports_identical(name, Variant::Buggy, &fresh, &warm);
        assert_reports_identical(name, Variant::Buggy, &fresh, &pooled);
    }
}

/// The fixed variants must be equally transparent (their traces differ
/// from the buggy ones, so this exercises different queue/trace shapes).
#[test]
fn pooled_and_fresh_runs_are_identical_for_fixed_variants() {
    const SEED: u64 = 0x5EED;
    for (name, run, guided) in scenarios() {
        let fresh = run_fresh(run, guided, SEED, Variant::Fixed);
        let _warm = run_once(run, guided, SEED, Variant::Fixed);
        let pooled = run_once(run, guided, SEED, Variant::Fixed);
        assert_reports_identical(name, Variant::Fixed, &fresh, &pooled);
    }
}
